#include "obs/exporter.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace udsim {

namespace {

[[nodiscard]] bool name_start_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

[[nodiscard]] bool name_char(char c) noexcept {
  return name_start_char(c) || (c >= '0' && c <= '9');
}

void append_label_value(std::string& out, std::string_view v) {
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

void append_labels(std::string& out, const PrometheusWriter::Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_label_value(out, v);
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string prometheus_name(std::string_view name, std::string_view prefix) {
  std::string out(prefix);
  if (out.empty() && (name.empty() || !name_start_char(name.front()))) {
    out += '_';
  }
  for (const char c : name) out += name_char(c) ? c : '_';
  return out;
}

void PrometheusWriter::type(std::string_view name, std::string_view type,
                            std::string_view help) {
  if (!help.empty()) {
    out_ += "# HELP ";
    out_ += name;
    out_ += ' ';
    for (const char c : help) out_ += c == '\n' ? ' ' : c;
    out_ += '\n';
  }
  out_ += "# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PrometheusWriter::sample(std::string_view name, std::uint64_t value,
                              const Labels& labels) {
  out_ += name;
  append_labels(out_, labels);
  char buf[32];
  std::snprintf(buf, sizeof buf, " %" PRIu64 "\n", value);
  out_ += buf;
}

void PrometheusWriter::sample(std::string_view name, double value,
                              const Labels& labels) {
  out_ += name;
  append_labels(out_, labels);
  char buf[48];
  std::snprintf(buf, sizeof buf, " %.9g\n", value);
  out_ += buf;
}

void PrometheusWriter::histogram(std::string_view name,
                                 const HistogramSnapshot& h,
                                 std::string_view help) {
  type(name, "histogram", help);
  const std::string bucket_name = std::string(name) + "_bucket";
  std::uint64_t cumulative = 0;
  char le[32];
  for (const auto& [floor, n] : h.buckets) {
    cumulative += n;
    // Inclusive upper edge of the log2 bucket [floor, 2·floor).
    std::snprintf(le, sizeof le, "%" PRIu64,
                  floor == 0 ? std::uint64_t{0} : floor * 2 - 1);
    sample(bucket_name, cumulative, {{"le", le}});
  }
  sample(bucket_name, h.count, {{"le", "+Inf"}});
  sample(std::string(name) + "_sum", h.sum);
  sample(std::string(name) + "_count", h.count);
}

std::string render_prometheus(const MetricsRegistry& reg,
                              std::string_view prefix) {
  PrometheusWriter w;
  for (const auto& [name, value] : reg.snapshot()) {
    const std::string pname = prometheus_name(name, prefix);
    w.type(pname, "untyped");
    w.sample(pname, value);
  }
  for (const auto& [name, h] : reg.snapshot_histograms()) {
    w.histogram(prometheus_name(name, prefix), h);
  }
  return w.take();
}

namespace {

[[nodiscard]] bool valid_metric_name(std::string_view s) noexcept {
  if (s.empty() || !name_start_char(s.front())) return false;
  for (const char c : s) {
    if (!name_char(c)) return false;
  }
  return true;
}

[[nodiscard]] bool valid_value(std::string_view s) noexcept {
  if (s.empty()) return false;
  if (s == "+Inf" || s == "-Inf" || s == "NaN") return true;
  char* end = nullptr;
  const std::string copy(s);
  (void)std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Validate one sample line: name[{labels}] value [timestamp].
[[nodiscard]] bool valid_sample_line(std::string_view line,
                                     std::string* reason) {
  std::size_t i = 0;
  while (i < line.size() && name_char(line[i])) ++i;
  if (i == 0 || !valid_metric_name(line.substr(0, i))) {
    if (reason) *reason = "bad metric name";
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    bool in_quotes = false;
    bool closed = false;
    for (++i; i < line.size(); ++i) {
      const char c = line[i];
      if (in_quotes) {
        if (c == '\\') {
          ++i;  // escaped char inside a label value
        } else if (c == '"') {
          in_quotes = false;
        }
      } else if (c == '"') {
        in_quotes = true;
      } else if (c == '}') {
        closed = true;
        ++i;
        break;
      }
    }
    if (!closed || in_quotes) {
      if (reason) *reason = "unterminated label set";
      return false;
    }
  }
  if (i >= line.size() || line[i] != ' ') {
    if (reason) *reason = "missing value separator";
    return false;
  }
  ++i;
  const std::size_t value_end = line.find(' ', i);
  const std::string_view value = line.substr(
      i, value_end == std::string_view::npos ? line.size() - i
                                             : value_end - i);
  if (!valid_value(value)) {
    if (reason) *reason = "unparseable value";
    return false;
  }
  if (value_end != std::string_view::npos) {
    // Optional timestamp: must be an integer.
    const std::string_view ts = line.substr(value_end + 1);
    if (ts.empty()) {
      if (reason) *reason = "trailing space without timestamp";
      return false;
    }
    for (std::size_t k = 0; k < ts.size(); ++k) {
      if (!(std::isdigit(static_cast<unsigned char>(ts[k])) ||
            (k == 0 && (ts[k] == '-' || ts[k] == '+')))) {
        if (reason) *reason = "bad timestamp";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool validate_prometheus_text(std::string_view text, std::string* error) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  const auto fail = [&](std::string_view line, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why + ": " +
               std::string(line);
    }
    return false;
  };
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line.front() == '#') {
      // Comment: "# TYPE name kind" and "# HELP name text" are checked,
      // other comments pass.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos ||
            !valid_metric_name(rest.substr(0, sp))) {
          return fail(line, "malformed TYPE comment");
        }
        const std::string_view kind = rest.substr(sp + 1);
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          return fail(line, "unknown metric type");
        }
      } else if (line.rfind("# HELP ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (!valid_metric_name(
                rest.substr(0, sp == std::string_view::npos ? rest.size() : sp))) {
          return fail(line, "malformed HELP comment");
        }
      }
      continue;
    }
    std::string reason;
    if (!valid_sample_line(line, &reason)) return fail(line, reason);
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace udsim
