// Prometheus text exposition of the observability layer (DESIGN.md §5l).
//
// PrometheusWriter builds text in the Prometheus exposition format
// (version 0.0.4: `# TYPE` headers, `name{label="v"} value` samples,
// log2 histograms as cumulative `_bucket{le=...}` series). Metric names are
// sanitized from the registry's dotted names ("service.outcome.completed" →
// "udsim_service_outcome_completed"); registry counters export as untyped
// samples (the registry does not distinguish monotonic counters from
// gauges), registry histograms as real histogram families. The composed
// service exposition (SimService::prometheus_text) layers typed gauges for
// queue/breaker/shed/quarantine/health and the rolling-window SLO view on
// top.
//
// validate_prometheus_text() is the scrape-side self-check: a line-grammar
// validator the telemetry smoke test (bench/telemetry_smoke) runs against
// every exposition the service renders, so a malformed metric name or an
// unparseable value fails CI instead of a scrape.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace udsim {

/// Sanitize a dotted metric name into the Prometheus alphabet
/// [a-zA-Z_:][a-zA-Z0-9_:]* — every invalid byte becomes '_', a leading
/// digit gains a '_' prefix. `prefix` is prepended verbatim.
[[nodiscard]] std::string prometheus_name(std::string_view name,
                                          std::string_view prefix = "udsim_");

/// Incremental exposition builder. Families must be opened (via type())
/// before their samples; the writer does not reorder.
class PrometheusWriter {
 public:
  /// Emit `# HELP` (when non-empty) and `# TYPE` for a family. `type` is
  /// one of counter|gauge|histogram|untyped.
  void type(std::string_view name, std::string_view type,
            std::string_view help = {});

  using Labels = std::vector<std::pair<std::string_view, std::string_view>>;
  void sample(std::string_view name, std::uint64_t value,
              const Labels& labels = {});
  void sample(std::string_view name, double value, const Labels& labels = {});

  /// One histogram family from a snapshot: cumulative `_bucket{le="..."}`
  /// series (inclusive upper edges of the log2 buckets, closed by
  /// le="+Inf"), plus `_sum` and `_count`. Emits its own TYPE header.
  void histogram(std::string_view name, const HistogramSnapshot& h,
                 std::string_view help = {});

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  std::string out_;
};

/// Render every counter (untyped samples) and histogram (histogram
/// families) of `reg` with sanitized names under `prefix`.
[[nodiscard]] std::string render_prometheus(const MetricsRegistry& reg,
                                            std::string_view prefix = "udsim_");

/// Validate exposition-format text line by line: every non-comment line
/// must be `name{labels} value [timestamp]` with a legal metric name,
/// balanced quoted labels and a parseable value; `# TYPE`/`# HELP` comments
/// must be well-formed. Returns true when clean; otherwise false with the
/// first offending line and reason in `*error` (when non-null).
[[nodiscard]] bool validate_prometheus_text(std::string_view text,
                                            std::string* error = nullptr);

}  // namespace udsim
