// RunReport: one JSON document telling the whole story of a simulation —
// engine and circuit identity, the exact counter snapshot, histograms, the
// structural cost profile, the Chrome trace, and any diagnostics the run
// produced (DESIGN.md §5g). The Simulator facade exposes it as
// `report_to_json()`; examples/metrics_sim writes it with `--json`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netlist/diagnostics.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace udsim {

class Simulator;

struct RunReportOptions {
  bool include_timings = true;  ///< keep "*.ns"/"*.us" keys and the trace
  bool include_trace = true;
  bool include_profile = true;
  std::size_t top_k = 8;  ///< hottest-net ranking size in the profile
};

/// Everything one run left behind, composed into a single document.
struct RunReport {
  std::string schema = "udsim-run-report-v1";
  std::string engine;
  std::string circuit;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
  ProgramProfile profile;
  std::vector<TraceEvent> trace;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::string to_json(const RunReportOptions& opts = {}) const;
};

/// Assemble a report from a simulator (its attached registry supplies
/// counters/histograms/trace; compiled engines supply the profile) plus an
/// optional diagnostics sink.
[[nodiscard]] RunReport make_run_report(const Simulator& sim,
                                        const Diagnostics* diag = nullptr,
                                        const RunReportOptions& opts = {});

/// make_run_report + to_json in one call.
[[nodiscard]] std::string report_to_json(const Simulator& sim,
                                         const Diagnostics* diag = nullptr,
                                         const RunReportOptions& opts = {});

}  // namespace udsim
