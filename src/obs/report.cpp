#include "obs/report.h"

#include "core/simulator.h"
#include "obs/json.h"

namespace udsim {

RunReport make_run_report(const Simulator& sim, const Diagnostics* diag,
                          const RunReportOptions& opts) {
  RunReport r;
  r.engine = engine_name(sim.kind());
  r.circuit = sim.netlist().name();
  if (const MetricsRegistry* reg = sim.metrics()) {
    r.counters = reg->snapshot();
    r.histograms = reg->snapshot_histograms();
    if (opts.include_trace) r.trace = reg->trace_events();
  }
  if (opts.include_profile) r.profile = sim.program_profile(opts.top_k);
  if (diag) r.diagnostics = diag->records();
  return r;
}

std::string RunReport::to_json(const RunReportOptions& opts) const {
  const auto is_timing = [](const std::string& name) {
    return name.size() >= 3 && (name.compare(name.size() - 3, 3, ".ns") == 0 ||
                                name.compare(name.size() - 3, 3, ".us") == 0);
  };
  JsonValue v = JsonValue::make_object();
  v.set("schema", JsonValue::make_string(schema));
  v.set("engine", JsonValue::make_string(engine));
  v.set("circuit", JsonValue::make_string(circuit));

  JsonValue& cj = v.set("counters", JsonValue::make_object());
  for (const auto& [name, value] : counters) {
    if (!opts.include_timings && is_timing(name)) continue;
    cj.set(name, JsonValue::make_uint(value));
  }
  JsonValue& hj = v.set("histograms", JsonValue::make_object());
  for (const auto& [name, h] : histograms) {
    if (!opts.include_timings && is_timing(name)) continue;
    JsonValue e = JsonValue::make_object();
    e.set("count", JsonValue::make_uint(h.count));
    e.set("sum", JsonValue::make_uint(h.sum));
    e.set("min", JsonValue::make_uint(h.min));
    e.set("max", JsonValue::make_uint(h.max));
    JsonValue& buckets = e.set("buckets", JsonValue::make_array());
    for (const auto& [floor, n] : h.buckets) {
      JsonValue pair = JsonValue::make_array();
      pair.array.push_back(JsonValue::make_uint(floor));
      pair.array.push_back(JsonValue::make_uint(n));
      buckets.array.push_back(std::move(pair));
    }
    hj.set(name, std::move(e));
  }

  if (opts.include_profile && profile.engaged()) {
    v.set("profile", JsonValue::parse(profile.to_json()));
  }
  if (opts.include_trace && opts.include_timings && !trace.empty()) {
    JsonValue& tj = v.set("trace", JsonValue::make_array());
    for (const TraceEvent& e : trace) {
      JsonValue ev = JsonValue::make_object();
      ev.set("name", JsonValue::make_string(e.name));
      ev.set("ts_ns", JsonValue::make_uint(e.start_ns));
      ev.set("dur_ns", JsonValue::make_uint(e.dur_ns));
      ev.set("tid", JsonValue::make_uint(e.tid));
      if (!e.args.empty()) {
        JsonValue& args = ev.set("args", JsonValue::make_object());
        for (const auto& [key, value] : e.args) {
          args.set(key, JsonValue::make_uint(value));
        }
      }
      tj.array.push_back(std::move(ev));
    }
  }
  if (!diagnostics.empty()) {
    JsonValue& dj = v.set("diagnostics", JsonValue::make_array());
    for (const Diagnostic& d : diagnostics) {
      JsonValue e = JsonValue::make_object();
      e.set("code", JsonValue::make_string(std::string(diag_code_name(d.code))));
      e.set("severity",
            JsonValue::make_string(std::string(diag_severity_name(d.severity))));
      e.set("subject", JsonValue::make_string(d.subject));
      e.set("message", JsonValue::make_string(d.message));
      if (d.line != 0) e.set("line", JsonValue::make_uint(d.line));
      dj.array.push_back(std::move(e));
    }
  }
  return v.dump();
}

std::string report_to_json(const Simulator& sim, const Diagnostics* diag,
                           const RunReportOptions& opts) {
  return make_run_report(sim, diag, opts).to_json(opts);
}

std::string Simulator::report_to_json(const RunReportOptions& opts) const {
  return make_run_report(*this, nullptr, opts).to_json(opts);
}

}  // namespace udsim
