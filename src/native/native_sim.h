// EngineKind::Native behind the Simulator facade: the ParallelCombined
// compiler produces the base Program (the paper's best-performing technique),
// the native backend turns it into a dlopen'd shared object, and this class
// runs vectors through the machine code while keeping the facade's exact
// observability contract — the same ExecCounters as the IR path, so
// `exec.ops == compile.ops × passes` holds whichever backend executed the
// pass (tests/fallback_chain_test.cpp pins this).
#pragma once

#include <memory>
#include <vector>

#include "core/simulator.h"
#include "native/native_backend.h"
#include "parsim/parallel_sim.h"

namespace udsim {

/// 32-bit native engine (the facade's word size, matching the IR engines it
/// is differentially tested against). Construction throws NativeError when
/// any pipeline stage fails — make_simulator_with_fallback catches it and
/// drops to the IR chain with a DiagCode::NativeFallback record.
class NativeSimulator final : public Simulator {
 public:
  explicit NativeSimulator(const Netlist& nl, const NativeOptions& opts = {});
  NativeSimulator(const Netlist& nl, const NativeOptions& opts,
                  const CompileGuard& guard);
  ~NativeSimulator() override;

  void step(std::span<const Bit> pi_values) override;
  [[nodiscard]] Bit final_value(NetId n) const override;
  using Simulator::run_batch;
  [[nodiscard]] BatchResult run_batch(std::span<const Bit> vectors,
                                      const BatchRunOptions& opts) const override;
  [[nodiscard]] const Netlist& netlist() const noexcept override { return nl_; }
  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::Native;
  }
  void set_metrics(MetricsRegistry* reg) noexcept override;
  [[nodiscard]] MetricsRegistry* metrics() const noexcept override {
    return metrics_;
  }
  [[nodiscard]] const Program* compiled_program() const noexcept override {
    return &compiled_.program;
  }
  [[nodiscard]] std::vector<ArenaProbe> output_probes() const override;
  [[nodiscard]] ProgramProfile program_profile(std::size_t top_k) const override;
  void set_cancel(const CancelToken* token) noexcept override;

  /// Whole-stream entry: `n_vectors` passes through the dlopen'd
  /// `udsim_kernel_run` symbol against this instance's arena — final state
  /// only, no per-vector sampling; the raw ir-vs-native throughput path
  /// (examples/native_sim.cpp). `in` is row-major, one word per PI per
  /// vector. Counters are bumped for all passes at once.
  void run_stream(std::span<const std::uint32_t> in, std::uint64_t n_vectors);

  [[nodiscard]] const NativeModule& module() const noexcept { return *module_; }
  [[nodiscard]] const ParallelCompiled& compiled() const noexcept {
    return compiled_;
  }

 private:
  const Netlist& nl_;
  NativeOptions opts_;
  ParallelCompiled compiled_;
  std::unique_ptr<NativeModule> module_;
  std::vector<std::uint32_t> arena_;
  std::vector<std::uint32_t> in_;
  ExecCounters exec_;
  MetricsRegistry* metrics_ = nullptr;
  CancelPoll poll_{nullptr};
  std::uint64_t passes_ = 0;
};

}  // namespace udsim
