// Native-code backend (DESIGN.md §5h): emit a compiled Program as C through
// ir/c_emitter's batch-entry mode, run the system C compiler in a sandboxed
// subprocess (resilience/subprocess.h — argv-based fork/exec, no shell,
// full stderr capture, wall-clock timeout with SIGTERM→SIGKILL escalation),
// and dlopen the resulting shared object — the out-of-process realization
// of the paper's premise that compiled simulation is just straight-line
// machine code. The in-process IR executor stays the semantic reference:
// every NativeModule is differentially tested bit-identical against
// execute<Word> (tests/native_backend_test.cpp), and every failure in the
// emit → compile → cache → dlopen → dlsym pipeline surfaces as a structured
// NativeError so the engine fallback chain can drop to the IR path instead
// of guessing — including a hung compiler, which is killed at
// NativeOptions::compile_timeout and surfaces as a Compile-stage error with
// timed_out() set.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "ir/program.h"
#include "obs/metrics.h"

namespace udsim {

/// Pipeline stage a native build failed in — the failure taxonomy of
/// DESIGN.md §5h. Each stage has a forced-failure test
/// (tests/native_fallback_test.cpp) proving the fallback chain catches it.
enum class NativeStage : std::uint8_t {
  Emit,     ///< C source generation / temp-file write failed
  Compile,  ///< the external compiler was missing or returned non-zero
  Cache,    ///< cache directory unusable (not creatable / not writable)
  Load,     ///< dlopen rejected the shared object (e.g. corrupted cache entry)
  Symbol,   ///< dlsym could not resolve an entry point
};

[[nodiscard]] std::string_view native_stage_name(NativeStage s) noexcept;

/// Structured failure of the native pipeline. Deliberately NOT derived from
/// BudgetExceeded: a missing compiler is an environment problem, not a
/// resource-limit problem, and the fallback chain records it as
/// DiagCode::NativeFallback instead of a budget downgrade.
class NativeError : public std::runtime_error {
 public:
  NativeError(NativeStage stage, std::string detail, bool timed_out = false);
  [[nodiscard]] NativeStage stage() const noexcept { return stage_; }
  /// True when the failure was the compile-timeout kill, not a compiler
  /// verdict — the one NativeError a retry can plausibly cure, so the
  /// fault classifier (resilience/resilient_run.h) treats it as transient
  /// while every other NativeError is deterministic.
  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }

 private:
  NativeStage stage_;
  bool timed_out_;
};

/// Knobs of the native pipeline. Empty strings defer to the environment
/// (README "Native backend"): UDSIM_CC, UDSIM_CC_FLAGS, UDSIM_NATIVE_CACHE.
struct NativeOptions {
  /// C compiler driver; "" = $UDSIM_CC, else "cc". Executed directly
  /// (fork/exec through PATH, no shell) — like `compile_flags`, trusted
  /// local configuration, never request-derived data.
  std::string compiler;
  /// Flags before the fixed `-shared -fPIC -o`; "" = $UDSIM_CC_FLAGS, else "-O2".
  /// Split on whitespace into separate arguments (split_command); shell
  /// metacharacters and quoting are NOT interpreted.
  std::string compile_flags;
  /// Wall-clock limit for one external-compiler run; on expiry the
  /// compiler's process group is killed (SIGTERM→SIGKILL) and the build
  /// fails as a Compile-stage NativeError with timed_out() set, plus a
  /// `native.compile_timeout` counter. Zero = unlimited. The default is
  /// sized for hang protection, not pacing: a legitimate -O2 compile of
  /// the largest ISCAS profile takes ~1 min on a loaded machine, and
  /// killing a slow-but-live compiler costs a whole engine tier.
  std::chrono::nanoseconds compile_timeout{std::chrono::seconds(300)};
  /// Wall-clock limit for the native_available() `--version` probe, so a
  /// wedged compiler cannot hang policy construction. Zero = unlimited.
  std::chrono::nanoseconds probe_timeout{std::chrono::seconds(5)};
  /// Byte cap on the captured compiler stderr carried inside a
  /// Compile-stage NativeError (the full multi-line message up to the cap,
  /// not just the first line).
  std::size_t stderr_cap = 8192;
  /// Compiled-object cache directory; "" = $UDSIM_NATIVE_CACHE, else
  /// <system tmp>/udsim-native-cache.
  std::string cache_dir;
  /// Reuse cached shared objects (keyed by program fingerprint × engine ×
  /// word size). Off = always rebuild into a fresh temp path.
  bool use_cache = true;
  /// Oldest cache entries are evicted beyond this count (0 = unbounded).
  std::size_t max_cache_entries = 64;
  /// Keep the generated .c next to the .so (mismatch forensics).
  bool keep_source = false;
  /// Vectors per cancellation chunk of NativeSimulator::run_batch.
  std::size_t batch_chunk = 1024;
};

/// Option/environment resolution (exposed for tests and diagnostics).
[[nodiscard]] std::string resolved_compiler(const NativeOptions& opts);
[[nodiscard]] std::string resolved_cache_dir(const NativeOptions& opts);

/// True when the resolved compiler responds to `--version` — the cheap
/// availability probe tests use to skip rather than fail on bare machines.
/// Runs through the sandboxed subprocess runner with
/// NativeOptions::probe_timeout, so a hung compiler makes this return
/// false instead of blocking the caller.
[[nodiscard]] bool native_available(const NativeOptions& opts = {});

/// FNV-1a over every semantically meaningful field of the program (ops
/// field-by-field — Op has padding bytes — plus arena geometry, word size
/// and init words; symbolic names excluded). Two programs with equal
/// fingerprints generate identical C.
[[nodiscard]] std::uint64_t program_fingerprint(const Program& p) noexcept;

/// Cache-entry stem: `<fingerprint hex>-<engine label>-w<word_bits>`.
[[nodiscard]] std::string native_cache_key(const Program& p,
                                           std::string_view engine_label);

/// One emitted + compiled + dlopen'd program. Construction runs the full
/// pipeline (or takes a cache hit) and throws NativeError on any stage;
/// destruction dlcloses. The entry points operate on a caller-owned arena,
/// so one module serves any number of independent arenas.
class NativeModule {
 public:
  /// `engine_label` names the base compiler for the cache key (e.g. "lcc",
  /// "pcset", "parallel-combined"). Counters (when `metrics` is non-null):
  /// native.builds, native.cache.{hit,miss,evicted,corrupt}, and a
  /// native.compile trace span around the external compiler invocation.
  /// A cached object that dlopen/dlsym rejects (truncated or bit-flipped on
  /// disk) is treated as a cache miss: the entry is evicted, the program is
  /// recompiled, and native.cache.corrupt is bumped — corruption of the
  /// on-disk cache never surfaces as a hard failure.
  NativeModule(const Program& p, std::string_view engine_label,
               const NativeOptions& opts = {}, MetricsRegistry* metrics = nullptr);
  ~NativeModule();
  NativeModule(const NativeModule&) = delete;
  NativeModule& operator=(const NativeModule&) = delete;

  /// Zero `arena` and apply the program's constant init words
  /// (`udsim_kernel_init`).
  template <class Word>
  void init(Word* arena) const {
    check_word_bits(sizeof(Word) * 8);
    reinterpret_cast<void (*)(Word*)>(fn_init_)(arena);
  }

  /// One vector pass (`udsim_kernel`): `in` is one word per program input.
  template <class Word>
  void step(Word* arena, const Word* in) const {
    check_word_bits(sizeof(Word) * 8);
    reinterpret_cast<void (*)(Word*, const Word*)>(fn_step_)(arena, in);
  }

  /// Whole-stream entry (`udsim_kernel_run`): runs `n_vectors` row-major
  /// vectors of `input_words` words each — the ISSUE's
  /// `(arena, inputs, n_vectors)` signature; one call, no per-vector FFI.
  template <class Word>
  void run(Word* arena, const Word* in, std::uint64_t n_vectors) const {
    check_word_bits(sizeof(Word) * 8);
    reinterpret_cast<void (*)(Word*, const Word*, std::uint64_t)>(fn_run_)(
        arena, in, n_vectors);
  }

  [[nodiscard]] const std::string& so_path() const noexcept { return so_path_; }
  /// Generated C source path; empty unless NativeOptions::keep_source.
  [[nodiscard]] const std::string& source_path() const noexcept {
    return source_path_;
  }
  [[nodiscard]] bool from_cache() const noexcept { return from_cache_; }
  [[nodiscard]] int word_bits() const noexcept { return word_bits_; }

 private:
  void check_word_bits(std::size_t bits) const;
  /// dlopen so_path_ and resolve the three entry points; throws
  /// NativeError(Load|Symbol) with handle_ left null on failure.
  void open_module();

  void* handle_ = nullptr;
  void* fn_init_ = nullptr;
  void* fn_step_ = nullptr;
  void* fn_run_ = nullptr;
  std::string so_path_;
  std::string source_path_;
  bool from_cache_ = false;
  int word_bits_ = 32;
};

}  // namespace udsim
