#include "native/native_sim.h"

#include <stdexcept>
#include <string>

#include "obs/profiler.h"

namespace udsim {

namespace {

ParallelOptions native_base_options() {
  // The facade's native engine compiles its base program with the paper's
  // best combination (path tracing + trimming), like EngineKind::ParallelCombined.
  ParallelOptions o;
  o.trimming = true;
  o.shift_elim = ShiftElim::PathTracing;
  o.word_bits = 32;
  return o;
}

/// Engine label of the base program in the cache key.
constexpr const char* kBaseLabel = "parallel-combined";

std::vector<std::pair<std::string, std::uint64_t>> native_extras(
    const ParallelCompiled& c) {
  return {{"exec.trimmed_stores_skipped", c.stats.suppressed_stores},
          {"exec.gap_words_filled", c.trim.gap_words}};
}

}  // namespace

NativeSimulator::NativeSimulator(const Netlist& nl, const NativeOptions& opts)
    : nl_(nl), opts_(opts), compiled_(compile_parallel(nl, native_base_options())) {
  module_ = std::make_unique<NativeModule>(compiled_.program, kBaseLabel, opts_);
  arena_.resize(compiled_.program.arena_words);
  module_->init(arena_.data());
}

NativeSimulator::NativeSimulator(const Netlist& nl, const NativeOptions& opts,
                                 const CompileGuard& guard)
    : nl_(nl),
      opts_(opts),
      compiled_(compile_parallel(nl, native_base_options(), guard)) {
  module_ = std::make_unique<NativeModule>(compiled_.program, kBaseLabel, opts_,
                                           guard.metrics);
  arena_.resize(compiled_.program.arena_words);
  module_->init(arena_.data());
}

NativeSimulator::~NativeSimulator() = default;

void NativeSimulator::set_metrics(MetricsRegistry* reg) noexcept {
  metrics_ = reg;
  exec_ = ExecCounters::attach(reg, compiled_.program, native_extras(compiled_));
}

void NativeSimulator::set_cancel(const CancelToken* token) noexcept {
  poll_ = CancelPoll(token);
}

void NativeSimulator::step(std::span<const Bit> pi_values) {
  const StopReason r = poll_.poll();
  if (r != StopReason::None) throw Cancelled(r, "native.step", passes_ + 1);
  in_.assign(nl_.primary_inputs().size(), 0);
  for (std::size_t i = 0; i < in_.size(); ++i) in_[i] = pi_values[i] & 1;
  module_->step(arena_.data(), in_.data());
  ++passes_;
  exec_.on_passes(1);
}

Bit NativeSimulator::final_value(NetId n) const {
  const auto pr = compiled_.final_probe(n);
  return static_cast<Bit>((arena_.at(pr.word) >> pr.bit) & 1u);
}

std::vector<ArenaProbe> NativeSimulator::output_probes() const {
  std::vector<ArenaProbe> probes;
  probes.reserve(nl_.primary_outputs().size());
  for (NetId po : nl_.primary_outputs()) {
    const auto pr = compiled_.final_probe(po);
    probes.push_back({pr.word, pr.bit});
  }
  return probes;
}

ProgramProfile NativeSimulator::program_profile(std::size_t top_k) const {
  return profile_program(compiled_.program, attribution_for(compiled_, nl_),
                         top_k);
}

BatchResult NativeSimulator::run_batch(std::span<const Bit> vectors,
                                       const BatchRunOptions& opts) const {
  const std::size_t pis = nl_.primary_inputs().size();
  if (pis == 0) {
    if (!vectors.empty()) {
      throw std::invalid_argument(
          "run_batch: stream of " + std::to_string(vectors.size()) +
          " bits given but the netlist has no primary inputs");
    }
  } else if (vectors.size() % pis != 0) {
    throw std::invalid_argument(
        "run_batch: stream size " + std::to_string(vectors.size()) +
        " is not a multiple of the primary-input count " + std::to_string(pis));
  }
  const std::size_t count = pis == 0 ? 0 : vectors.size() / pis;

  BatchResult r;
  r.outputs = nl_.primary_outputs();
  r.vectors = count;
  r.threads = 1;  // the dlopen'd code runs in-process, single-threaded
  r.values.reserve(count * r.outputs.size());

  // Reset-state semantics, like the IR batch layer: fresh arena, this
  // instance's incremental state untouched.
  std::vector<std::uint32_t> arena(compiled_.program.arena_words);
  module_->init(arena.data());
  std::vector<std::uint32_t> in(pis);
  const std::vector<ArenaProbe> probes = output_probes();

  // Per-run overrides (BatchRunOptions): a request-scoped token/registry
  // beats the instance attachments, so a cached const NativeSimulator can
  // serve concurrent service sessions.
  MetricsRegistry* metrics = opts.metrics ? opts.metrics : metrics_;
  const ExecCounters exec =
      opts.metrics && opts.metrics != metrics_
          ? ExecCounters::attach(opts.metrics, compiled_.program,
                                 native_extras(compiled_))
          : exec_;

  // Chunked execution: the cancel token is polled at every chunk boundary
  // (resilience contract — a native run stops within `batch_chunk` vectors
  // of a cancel request), and the exact per-pass counters are settled per
  // chunk so a cancelled run reports exactly the passes that completed.
  const std::size_t chunk = opts_.batch_chunk == 0 ? 1024 : opts_.batch_chunk;
  CancelPoll poll(opts.cancel ? opts.cancel : poll_.token());
  std::size_t since_chunk = 0;
  for (std::size_t v = 0; v < count; ++v) {
    if (v % chunk == 0) {
      metric_add(metrics, "native.batch.chunks", 1);
      exec.on_passes(since_chunk);
      since_chunk = 0;
      const StopReason reason = poll.poll();
      if (reason != StopReason::None) throw Cancelled(reason, "native.batch", v);
    }
    for (std::size_t i = 0; i < pis; ++i) in[i] = vectors[v * pis + i] & 1;
    module_->step(arena.data(), in.data());
    ++since_chunk;
    for (const ArenaProbe& pr : probes) {
      r.values.push_back(static_cast<Bit>((arena[pr.word] >> pr.bit) & 1u));
    }
  }
  exec.on_passes(since_chunk);
  return r;
}

void NativeSimulator::run_stream(std::span<const std::uint32_t> in,
                                 std::uint64_t n_vectors) {
  if (in.size() < n_vectors * compiled_.program.input_words) {
    throw std::invalid_argument("run_stream: input span shorter than "
                                "n_vectors × input_words");
  }
  const StopReason r = poll_.poll();
  if (r != StopReason::None) throw Cancelled(r, "native.run", passes_ + 1);
  module_->run(arena_.data(), in.data(), n_vectors);
  passes_ += n_vectors;
  exec_.on_passes(n_vectors);
}

}  // namespace udsim
