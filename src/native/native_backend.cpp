#include "native/native_backend.h"

#include <dlfcn.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "ir/c_emitter.h"
#include "resilience/subprocess.h"

namespace udsim {

namespace fs = std::filesystem;

namespace {

/// Symbol stem baked into every generated translation unit; the emitter
/// appends `_init` / `_run` for the other two entry points.
constexpr const char* kEntryName = "udsim_kernel";

[[nodiscard]] std::string env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v && *v ? v : fallback;
}

/// Process-unique stem for in-flight build artifacts, so concurrent
/// processes (and the unlocked no-cache path) never collide.
[[nodiscard]] std::string scratch_stem() {
  static std::atomic<std::uint64_t> counter{0};
  return "build-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1));
}

/// flock-based exclusive lock on `<dir>/.lock`, held across the
/// probe → compile → install → evict critical section so concurrent
/// processes sharing one cache directory serialize their builds.
class CacheLock {
 public:
  explicit CacheLock(const fs::path& dir) {
    const fs::path lockfile = dir / ".lock";
    fd_ = ::open(lockfile.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ < 0) {
      throw NativeError(NativeStage::Cache,
                        "cannot open lockfile " + lockfile.string());
    }
    if (::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw NativeError(NativeStage::Cache,
                        "cannot lock " + lockfile.string());
    }
  }
  ~CacheLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  CacheLock(const CacheLock&) = delete;
  CacheLock& operator=(const CacheLock&) = delete;

 private:
  int fd_ = -1;
};

void write_source(const fs::path& path, const Program& p) {
  std::ofstream out(path);
  if (!out) {
    throw NativeError(NativeStage::Emit,
                      "cannot create C source file " + path.string());
  }
  CEmitOptions opts;
  opts.function_name = kEntryName;
  opts.arena_name = "a";
  opts.comments = false;  // names are debug aid only; keep cache entries lean
  opts.batch_entry = true;
  emit_c(out, p, opts);
  out.flush();
  if (!out) {
    throw NativeError(NativeStage::Emit,
                      "short write emitting C source to " + path.string());
  }
}

/// `cc <flags...> -shared -fPIC -o out src` through the sandboxed
/// subprocess runner (DESIGN.md §5k): argv-based fork/exec (no shell —
/// `flags` is whitespace-split, metacharacters are data), full stderr
/// captured through a pipe up to `opts.stderr_cap`, and a wall-clock
/// timeout that kills the compiler's whole process group. `compiler` and
/// `flags` come from the caller's own NativeOptions / UDSIM_CC /
/// UDSIM_CC_FLAGS — local configuration, never request data.
void compile_source(const std::string& compiler, const std::string& flags,
                    const fs::path& src, const fs::path& out,
                    const NativeOptions& opts, MetricsRegistry* metrics) {
  std::vector<std::string> argv;
  argv.push_back(compiler);
  for (std::string& f : split_command(flags)) argv.push_back(std::move(f));
  argv.insert(argv.end(),
              {"-shared", "-fPIC", "-o", out.string(), src.string()});

  SubprocessOptions sopts;
  sopts.timeout = opts.compile_timeout;
  sopts.stderr_cap = opts.stderr_cap;
  SubprocessResult res;
  {
    TraceSpan span(metrics, "native.compile");
    res = run_subprocess(argv, sopts);
  }
  metric_add(metrics, "native.builds", 1);
  if (res.ok()) return;

  std::error_code ec;
  fs::remove(out, ec);
  if (res.timed_out) {
    metric_add(metrics, "native.compile_timeout", 1);
    throw NativeError(
        NativeStage::Compile,
        "compiler '" + compiler + "' " + res.describe() +
            " (compile_timeout; process group killed)",
        /*timed_out=*/true);
  }
  std::string detail =
      "compiler '" + compiler + "' failed (" + res.describe() + ")";
  if (!res.stderr_output.empty()) {
    // Carry the whole captured stderr (multi-line compile errors are the
    // diagnosable part), already truncated to the byte cap by the runner.
    detail += ":\n" + res.stderr_output;
    if (res.stderr_truncated) {
      detail += "\n[stderr truncated at " + std::to_string(opts.stderr_cap) +
                " bytes]";
    }
  }
  throw NativeError(NativeStage::Compile, detail);
}

/// Drop the oldest `.so` entries beyond `max_entries` (0 = unbounded).
/// Caller holds the cache lock.
std::size_t evict_cache(const fs::path& dir, std::size_t max_entries) {
  if (max_entries == 0) return 0;
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    if (e.path().extension() == ".so") {
      entries.push_back({e.path(), fs::last_write_time(e.path(), ec)});
    }
  }
  if (entries.size() <= max_entries) return 0;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  const std::size_t excess = entries.size() - max_entries;
  for (std::size_t i = 0; i < excess; ++i) {
    fs::remove(entries[i].path, ec);
    fs::remove(fs::path(entries[i].path).replace_extension(".c"), ec);
  }
  return excess;
}

}  // namespace

std::string_view native_stage_name(NativeStage s) noexcept {
  switch (s) {
    case NativeStage::Emit:
      return "emit";
    case NativeStage::Compile:
      return "compile";
    case NativeStage::Cache:
      return "cache";
    case NativeStage::Load:
      return "load";
    case NativeStage::Symbol:
      return "symbol";
  }
  return "?";
}

NativeError::NativeError(NativeStage stage, std::string detail, bool timed_out)
    : std::runtime_error("native backend (" +
                         std::string(native_stage_name(stage)) + " stage): " +
                         detail),
      stage_(stage),
      timed_out_(timed_out) {}

std::string resolved_compiler(const NativeOptions& opts) {
  return opts.compiler.empty() ? env_or("UDSIM_CC", "cc") : opts.compiler;
}

std::string resolved_cache_dir(const NativeOptions& opts) {
  if (!opts.cache_dir.empty()) return opts.cache_dir;
  const std::string env = env_or("UDSIM_NATIVE_CACHE", "");
  if (!env.empty()) return env;
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) tmp = "/tmp";
  return (tmp / "udsim-native-cache").string();
}

bool native_available(const NativeOptions& opts) {
  // Through the subprocess runner with a short timeout: a wedged
  // `cc --version` makes the probe report "unavailable" instead of hanging
  // whoever is constructing a policy.
  SubprocessOptions sopts;
  sopts.timeout = opts.probe_timeout;
  sopts.stderr_cap = 256;
  return run_subprocess({resolved_compiler(opts), "--version"}, sopts).ok();
}

std::uint64_t program_fingerprint(const Program& p) noexcept {
  // FNV-1a, same constants as the checkpoint hasher. Ops are hashed
  // field-by-field: Op carries two padding bytes whose contents are
  // indeterminate, so a raw byte hash would make equal programs miss.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(p.word_bits));
  mix(p.arena_words);
  mix(p.input_words);
  mix(p.ops.size());
  for (const Op& op : p.ops) {
    mix(static_cast<std::uint64_t>(op.code) | std::uint64_t{op.imm} << 8);
    mix(std::uint64_t{op.dst} | std::uint64_t{op.a} << 32);
    mix(op.b);
  }
  mix(p.arena_init.size());
  for (const Program::InitWord& iw : p.arena_init) {
    mix(iw.index);
    mix(iw.value);
  }
  return h;
}

std::string native_cache_key(const Program& p, std::string_view engine_label) {
  std::ostringstream os;
  os << std::hex << program_fingerprint(p) << std::dec << "-";
  for (char c : engine_label) {
    os << (std::isalnum(static_cast<unsigned char>(c)) ? c : '-');
  }
  os << "-w" << p.word_bits;
  return os.str();
}

NativeModule::NativeModule(const Program& p, std::string_view engine_label,
                           const NativeOptions& opts, MetricsRegistry* metrics) {
  word_bits_ = p.word_bits;
  const std::string compiler = resolved_compiler(opts);
  const std::string flags =
      opts.compile_flags.empty() ? env_or("UDSIM_CC_FLAGS", "-O2")
                                 : opts.compile_flags;
  const std::string key = native_cache_key(p, engine_label);

  if (opts.use_cache) {
    const fs::path dir = resolved_cache_dir(opts);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec || !fs::is_directory(dir)) {
      throw NativeError(NativeStage::Cache, "cache directory " + dir.string() +
                                                " is not usable" +
                                                (ec ? ": " + ec.message() : ""));
    }
    const fs::path so = dir / (key + ".so");
    const fs::path src = dir / (key + ".c");
    // Two rounds at most: a cached object that dlopen/dlsym rejects (a
    // truncated or bit-flipped .so from a killed process) is *corruption,
    // not failure* — evict it, recompile as a miss, and only a failure of
    // the freshly built object escapes as NativeError.
    for (int round = 0;; ++round) {
      {
        const CacheLock lock(dir);
        if (fs::exists(so, ec) && !ec) {
          metric_add(metrics, "native.cache.hit", 1);
          from_cache_ = true;
          // Refresh mtime so LRU eviction sees the hit.
          fs::last_write_time(so, fs::file_time_type::clock::now(), ec);
        } else {
          metric_add(metrics, "native.cache.miss", 1);
          from_cache_ = false;
          const fs::path tmp_src = dir / (scratch_stem() + ".c");
          const fs::path tmp_so = dir / (scratch_stem() + ".so.tmp");
          write_source(tmp_src, p);
          compile_source(compiler, flags, tmp_src, tmp_so, opts, metrics);
          // Atomic install: a concurrent reader either sees the complete old
          // entry or the complete new one, never a half-written object.
          fs::rename(tmp_so, so, ec);
          if (ec) {
            fs::remove(tmp_src, ec);
            throw NativeError(NativeStage::Cache, "cannot install " +
                                                      so.string() + ": " +
                                                      ec.message());
          }
          if (opts.keep_source) {
            fs::rename(tmp_src, src, ec);
          } else {
            fs::remove(tmp_src, ec);
          }
          const std::size_t evicted = evict_cache(dir, opts.max_cache_entries);
          if (evicted != 0) metric_add(metrics, "native.cache.evicted", evicted);
        }
        if (opts.keep_source && fs::exists(src, ec)) source_path_ = src.string();
        so_path_ = so.string();
      }
      try {
        open_module();
        break;
      } catch (const NativeError&) {
        if (!from_cache_ || round != 0) throw;
        // Corrupted cache entry: treat as a miss. Evict under the lock so a
        // concurrent process cannot hit the same bad object, then rebuild.
        metric_add(metrics, "native.cache.corrupt", 1);
        const CacheLock lock(dir);
        fs::remove(so, ec);
      }
    }
  } else {
    std::error_code ec;
    fs::path tmp = fs::temp_directory_path(ec);
    if (ec) tmp = "/tmp";
    const std::string stem = "udsim-" + key + "-" + scratch_stem();
    const fs::path src = tmp / (stem + ".c");
    const fs::path so = tmp / (stem + ".so");
    write_source(src, p);
    compile_source(compiler, flags, src, so, opts, metrics);
    if (opts.keep_source) {
      source_path_ = src.string();
    } else {
      fs::remove(src, ec);
    }
    so_path_ = so.string();
    open_module();
  }
}

void NativeModule::open_module() {
  handle_ = ::dlopen(so_path_.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    const char* err = ::dlerror();
    throw NativeError(NativeStage::Load,
                      "dlopen(" + so_path_ + ") failed" +
                          (err ? ": " + std::string(err) : "") +
                          (from_cache_ ? " [cached object]" : ""));
  }
  const auto resolve = [this](const std::string& sym) {
    void* fn = ::dlsym(handle_, sym.c_str());
    if (fn == nullptr) {
      // Copy the message before dlclose: dlerror() may point into the
      // module's own memory, gone once it is unloaded.
      const char* err = ::dlerror();
      const std::string detail = err ? ": " + std::string(err) : "";
      ::dlclose(handle_);
      handle_ = nullptr;
      throw NativeError(NativeStage::Symbol,
                        "dlsym(" + sym + ") failed in " + so_path_ + detail);
    }
    return fn;
  };
  fn_step_ = resolve(kEntryName);
  fn_init_ = resolve(std::string(kEntryName) + "_init");
  fn_run_ = resolve(std::string(kEntryName) + "_run");
}

NativeModule::~NativeModule() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

void NativeModule::check_word_bits(std::size_t bits) const {
  if (static_cast<int>(bits) != word_bits_) {
    throw std::logic_error("NativeModule: word size mismatch with program");
  }
}

}  // namespace udsim
