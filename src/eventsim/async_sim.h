// Asynchronous-circuit event-driven simulation: the paper's conclusion
// names "extending these techniques to asynchronous sequential circuits" as
// work in progress. Compiled straight-line code needs acyclic networks, but
// event-driven simulation does not — this engine accepts combinational
// cycles (latches built from cross-coupled gates, ring oscillators) and
// runs each input vector to quiescence, with a time bound to catch
// oscillation / metastability.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace udsim {

struct AsyncStepResult {
  bool settled = false;      ///< reached quiescence within the bound
  int settle_time = 0;       ///< time of the last applied event (if settled)
  bool oscillating = false;  ///< events still pending at the bound
  std::uint64_t events = 0;  ///< changes applied during this vector
  /// Detected oscillation period in gate delays (0 = none detected): the
  /// spacing of the first repeated value-state signature while events were
  /// still pending. Heuristic (signature-based), exact for pure limit
  /// cycles like ring oscillators and latch races.
  int period = 0;
};

class AsyncEventSim {
 public:
  /// Takes a private lowered copy; cycles are allowed (validate_structure
  /// only). Per-gate delays honoured; zero-delay resolvers run in waves.
  explicit AsyncEventSim(const Netlist& nl);

  /// Apply one input vector and simulate until quiescence or `max_time`.
  AsyncStepResult step(std::span<const Bit> pi_values, int max_time = 4096);

  [[nodiscard]] Bit value(NetId n) const { return values_.at(n.value); }

  /// Force every gate to evaluate on the next step (used after reset()).
  void reset(Bit v = 0);

 private:
  void schedule(NetId net, Bit value, std::int64_t target, std::int64_t now);
  [[nodiscard]] std::size_t ring_slot(std::uint32_t net, std::int64_t t) const {
    return net * ring_size_ +
           static_cast<std::size_t>(t % static_cast<std::int64_t>(ring_size_));
  }

  Netlist nl_;
  std::vector<Bit> values_;
  std::vector<std::uint64_t> zobrist_;  ///< per-net random; XORed on toggle
  std::uint64_t state_hash_ = 0;
  std::size_t ring_size_ = 2;
  std::vector<std::int64_t> ring_time_;
  std::vector<Bit> ring_value_;
  std::vector<std::int64_t> last_target_time_;
  std::vector<Bit> last_target_value_;
  std::vector<std::vector<std::uint32_t>> wheel_;  ///< ring of ring_size_+1 slots
  std::size_t pending_ = 0;
  std::int64_t base_time_ = 0;
  bool first_step_ = true;
};

}  // namespace udsim
