#include "eventsim/zero_delay_sim.h"

namespace udsim {

ZeroDelayEventSim::ZeroDelayEventSim(const Netlist& nl) : nl_(nl) {
  lower_wired_nets(nl_);
  nl_.validate();
  order_ = topological_gate_order(nl_);
  topo_pos_.assign(nl_.gate_count(), 0);
  values_.assign(nl_.net_count(), 0);
  dirty_.assign(nl_.gate_count(), false);
  for (std::uint32_t i = 0; i < order_.size(); ++i) {
    topo_pos_[order_[i].value] = i;
  }
  for (const Gate& g : nl_.gates()) {
    if (g.type == GateType::Const1) values_[g.output.value] = 1;
  }
}

void ZeroDelayEventSim::step(std::span<const Bit> pi_values) {
  if (pi_values.size() != nl_.primary_inputs().size()) {
    throw std::invalid_argument("ZeroDelayEventSim::step: wrong primary-input count");
  }
  const auto mark_fanout = [&](NetId n) {
    for (GateId g : nl_.net(n).fanout) {
      if (!dirty_[g.value]) {
        dirty_[g.value] = true;
        work_.push(topo_pos_[g.value]);
      }
    }
  };
  if (first_step_) {
    // The all-zero construction state may be inconsistent; settle everything.
    first_step_ = false;
    for (std::uint32_t gi = 0; gi < nl_.gate_count(); ++gi) {
      dirty_[gi] = true;
      work_.push(topo_pos_[gi]);
    }
  }
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    const NetId pi = nl_.primary_inputs()[i];
    const Bit v = pi_values[i] & 1;
    if (values_[pi.value] != v) {
      values_[pi.value] = v;
      mark_fanout(pi);
    }
  }
  std::vector<Bit> pins;
  while (!work_.empty()) {
    const std::uint32_t pos = work_.top();
    work_.pop();
    const GateId gid = order_[pos];
    if (!dirty_[gid.value]) continue;
    dirty_[gid.value] = false;
    const Gate& g = nl_.gate(gid);
    pins.clear();
    for (NetId in : g.inputs) pins.push_back(values_[in.value]);
    ++gate_evals_;
    const Bit v = eval2(g.type, pins);
    if (values_[g.output.value] != v) {
      values_[g.output.value] = v;
      mark_fanout(g.output);
    }
  }
}

}  // namespace udsim
