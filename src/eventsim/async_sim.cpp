#include "eventsim/async_sim.h"

#include <algorithm>
#include <unordered_map>

#include "gen/rng.h"

namespace udsim {

AsyncEventSim::AsyncEventSim(const Netlist& nl) : nl_(nl) {
  lower_wired_nets(nl_);
  nl_.validate_structure();
  values_.assign(nl_.net_count(), 0);
  ring_size_ = static_cast<std::size_t>(std::max(nl_.max_delay(), 1)) + 1;
  ring_time_.assign(nl_.net_count() * ring_size_, -1);
  ring_value_.assign(nl_.net_count() * ring_size_, 0);
  last_target_time_.assign(nl_.net_count(), -1);
  last_target_value_.assign(nl_.net_count(), 0);
  wheel_.resize(ring_size_ + 1);
  Rng rng(0x5eedu);
  zobrist_.resize(nl_.net_count());
  for (std::uint64_t& z : zobrist_) z = rng.next();
  for (const Gate& g : nl_.gates()) {
    if (g.type == GateType::Const1) values_[g.output.value] = 1;
  }
}

void AsyncEventSim::reset(Bit v) {
  for (Bit& x : values_) x = v & 1;
  for (const Gate& g : nl_.gates()) {
    if (g.type == GateType::Const0) values_[g.output.value] = 0;
    if (g.type == GateType::Const1) values_[g.output.value] = 1;
  }
  first_step_ = true;
}

void AsyncEventSim::schedule(NetId net, Bit v, std::int64_t target, std::int64_t now) {
  const std::uint32_t n = net.value;
  const std::size_t rs = ring_slot(n, target);
  if (ring_time_[rs] == target) {
    ring_value_[rs] = v;
    last_target_value_[n] = v;
    return;
  }
  const Bit projected =
      last_target_time_[n] > now ? last_target_value_[n] : values_[n];
  if (v == projected) return;
  ring_time_[rs] = target;
  ring_value_[rs] = v;
  last_target_time_[n] = target;
  last_target_value_[n] = v;
  wheel_[static_cast<std::size_t>(target % static_cast<std::int64_t>(wheel_.size()))]
      .push_back(n);
  ++pending_;
}

AsyncStepResult AsyncEventSim::step(std::span<const Bit> pi_values, int max_time) {
  if (pi_values.size() != nl_.primary_inputs().size()) {
    throw NetlistError("AsyncEventSim::step: wrong primary-input count");
  }
  AsyncStepResult result;
  const std::int64_t base = base_time_;
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    schedule(nl_.primary_inputs()[i], pi_values[i] & 1, base, base - 1);
  }
  bool force_all = first_step_;
  first_step_ = false;

  std::vector<std::uint32_t> changed;
  std::vector<std::uint32_t> eval_list;
  std::vector<Bit> pins;
  std::int64_t t = base;
  std::int64_t last_event = base;
  // Period detection: first repeat of the value-state signature while
  // events remain pending.
  std::unordered_map<std::uint64_t, std::int64_t> seen;
  while ((pending_ || (t == base && force_all)) && t - base <= max_time) {
    auto& slot =
        wheel_[static_cast<std::size_t>(t % static_cast<std::int64_t>(wheel_.size()))];
    while (!slot.empty() || (t == base && force_all)) {
      changed.clear();
      for (std::uint32_t n : slot) {
        const std::size_t rs = ring_slot(n, t);
        if (ring_time_[rs] != t) continue;  // defensive: stale entry
        ring_time_[rs] = -1;
        --pending_;
        if (ring_value_[rs] == values_[n]) continue;
        values_[n] = ring_value_[rs];
        state_hash_ ^= zobrist_[n];
        ++result.events;
        last_event = t;
        changed.push_back(n);
      }
      slot.clear();
      eval_list.clear();
      if (t == base && force_all) {
        force_all = false;
        for (std::uint32_t gi = 0; gi < nl_.gate_count(); ++gi) {
          eval_list.push_back(gi);
        }
      } else {
        for (std::uint32_t n : changed) {
          for (GateId g : nl_.net(NetId{n}).fanout) {
            eval_list.push_back(g.value);
          }
        }
      }
      for (std::uint32_t gi : eval_list) {
        const Gate& g = nl_.gate(GateId{gi});
        if (is_constant(g.type)) continue;
        pins.clear();
        for (NetId in : g.inputs) pins.push_back(values_[in.value]);
        schedule(g.output, eval2(g.type, pins), t + nl_.delay(GateId{gi}), t);
      }
    }
    if (pending_ && result.period == 0) {
      const auto [it, inserted] = seen.try_emplace(state_hash_, t);
      if (!inserted) result.period = static_cast<int>(t - it->second);
    }
    ++t;
  }
  if (pending_) {
    result.oscillating = true;
    // Drain the wheel so the next vector starts clean; values_ keeps the
    // state at the bound.
    for (auto& slot : wheel_) {
      for (std::uint32_t n : slot) {
        const auto span_begin = ring_time_.begin() + static_cast<std::ptrdiff_t>(
                                                         n * ring_size_);
        std::fill(span_begin, span_begin + static_cast<std::ptrdiff_t>(ring_size_), -1);
      }
      slot.clear();
    }
    pending_ = 0;
  } else {
    result.settled = true;
    result.settle_time = static_cast<int>(last_event - base);
  }
  base_time_ = t + static_cast<std::int64_t>(wheel_.size());
  return result;
}

}  // namespace udsim
