// Interpreted event-driven unit-delay simulation: the baseline the paper
// compares against (Fig. 19, first two columns), in both a two-valued and a
// three-valued logic model.
//
// Classic time-wheel organization: one event list per gate-delay slot;
// applying the changes at time t triggers evaluation of the fanout gates,
// whose output changes are scheduled at t + delay. Zero-delay wired
// resolvers are processed in delta waves inside the same slot.
#pragma once

#include <algorithm>
#include <cassert>
#include <span>
#include <stdexcept>
#include <vector>

#include "analysis/levelize.h"
#include "netlist/netlist.h"
#include "obs/metrics.h"
#include "resilience/cancel.h"

namespace udsim {

/// One recorded value change (for equivalence checking against the oracle).
template <class Value>
struct ChangeRecord {
  NetId net;
  int time;
  Value value;
};

struct EventSimStats {
  std::uint64_t events = 0;      ///< net value changes applied
  std::uint64_t gate_evals = 0;  ///< gate function evaluations
  std::uint64_t vectors = 0;
};

namespace detail {

struct TwoValuedTraits {
  using Value = Bit;
  static Value from_bit(Bit b) noexcept { return b & 1; }
  static Value initial() noexcept { return 0; }
  static Value eval(GateType t, std::span<const Value> pins) noexcept {
    return eval2(t, pins);
  }
};

struct ThreeValuedTraits {
  using Value = Tri;
  static Value from_bit(Bit b) noexcept { return (b & 1) ? Tri::One : Tri::Zero; }
  static Value initial() noexcept { return Tri::X; }
  static Value eval(GateType t, std::span<const Value> pins) noexcept {
    return eval3(t, pins);
  }
};

template <class Traits>
class EventSimT {
 public:
  using Value = typename Traits::Value;

  /// Takes a private lowered copy of `nl` (wired nets become zero-delay
  /// resolver gates; original NetIds stay valid).
  explicit EventSimT(const Netlist& nl) : nl_(nl) {
    lower_wired_nets(nl_);
    nl_.validate();
    lv_ = levelize(nl_);
    values_.assign(nl_.net_count(), Traits::initial());
    // Transport-delay scheduling: a net whose driver has delay d can have up
    // to d outstanding events (targets within (now, now+d]), so pending
    // events live in a per-net ring of d_max+1 slots, keyed by a globally
    // monotonic time that never repeats across vectors.
    ring_size_ = static_cast<std::size_t>(std::max(nl_.max_delay(), 1)) + 1;
    ring_time_.assign(nl_.net_count() * ring_size_, -1);
    ring_value_.assign(nl_.net_count() * ring_size_, Traits::initial());
    last_target_time_.assign(nl_.net_count(), -1);
    last_target_value_.assign(nl_.net_count(), Traits::initial());
    wheel_.resize(static_cast<std::size_t>(lv_.depth) + ring_size_ + 1);
    // Constant nets never see events; pin their values up front.
    for (const Gate& g : nl_.gates()) {
      if (g.type == GateType::Const0) values_[g.output.value] = Traits::from_bit(0);
      if (g.type == GateType::Const1) values_[g.output.value] = Traits::from_bit(1);
    }
  }

  /// Simulate one input vector. Records changes when `record` is true.
  /// With a cancel token attached, a cancelled/deadline-expired token
  /// raises Cancelled *before* the vector starts, so net values always
  /// reflect whole settled vectors.
  void step(std::span<const Bit> pi_values, bool record = false) {
    const StopReason r = poll_.poll();  // one dead branch when detached
    if (r != StopReason::None) throw Cancelled(r, "event.step", stats_.vectors + 1);
    if (pi_values.size() != nl_.primary_inputs().size()) {
      throw std::invalid_argument("EventSim::step: wrong primary-input count");
    }
    changes_.clear();
    ++stats_.vectors;
    const std::int64_t base = base_time_;
    for (std::size_t i = 0; i < pi_values.size(); ++i) {
      schedule(nl_.primary_inputs()[i], Traits::from_bit(pi_values[i]), base, base - 1);
    }
    // The construction/reset state may be inconsistent (a two-valued model
    // has no X); evaluate every gate once on the first step so the circuit
    // settles regardless of which inputs happened to change.
    bool force_all = first_step_;
    first_step_ = false;
    std::vector<std::uint32_t> changed;
    std::vector<std::uint32_t> eval_list;
    std::vector<Value> pins;
    const auto horizon = base + lv_.depth + static_cast<std::int64_t>(ring_size_);
    for (std::int64_t t = base; t <= horizon; ++t) {
      auto& slot = wheel_[static_cast<std::size_t>(t % static_cast<std::int64_t>(wheel_.size()))];
      while (!slot.empty() || (t == base && force_all)) {
        changed.clear();
        for (std::uint32_t n : slot) {
          const std::size_t rs = ring_slot(n, t);
          assert(ring_time_[rs] == t && "pending event ring corrupted");
          ring_time_[rs] = -1;
          if (ring_value_[rs] == values_[n]) continue;  // cancelled
          values_[n] = ring_value_[rs];
          ++stats_.events;
          changed.push_back(n);
          if (record) changes_.push_back({NetId{n}, static_cast<int>(t - base), values_[n]});
        }
        slot.clear();
        // Conventional interpreted simulation evaluates the fanout gate once
        // per *pin* carrying a change (no cross-event dedup) — the cost
        // structure the paper's baseline column embodies.
        eval_list.clear();
        if (t == base && force_all) {
          force_all = false;
          for (std::uint32_t gi = 0; gi < nl_.gate_count(); ++gi) {
            eval_list.push_back(gi);
          }
        } else {
          for (std::uint32_t n : changed) {
            for (GateId g : nl_.net(NetId{n}).fanout) {
              eval_list.push_back(g.value);
            }
          }
        }
        for (std::uint32_t gi : eval_list) {
          const Gate& g = nl_.gate(GateId{gi});
          pins.clear();
          for (NetId in : g.inputs) pins.push_back(values_[in.value]);
          ++stats_.gate_evals;
          schedule(g.output, Traits::eval(g.type, pins), t + nl_.delay(GateId{gi}), t);
        }
      }
    }
    base_time_ += lv_.depth + static_cast<std::int64_t>(ring_size_) + 1;
    publish_metrics();
  }

  [[nodiscard]] Value value(NetId n) const { return values_.at(n.value); }
  [[nodiscard]] const std::vector<ChangeRecord<Value>>& last_changes() const noexcept {
    return changes_;
  }
  [[nodiscard]] const EventSimStats& stats() const noexcept { return stats_; }
  [[nodiscard]] int depth() const noexcept { return lv_.depth; }

  /// Attach runtime counters: each step() adds the vector plus the exact
  /// events-applied / gate-evaluation deltas of that step (sim.vectors,
  /// event.events, event.gate_evals). Null detaches.
  void set_metrics(MetricsRegistry* reg) {
    metric_vectors_ = reg ? &reg->counter("sim.vectors") : nullptr;
    metric_events_ = reg ? &reg->counter("event.events") : nullptr;
    metric_gate_evals_ = reg ? &reg->counter("event.gate_evals") : nullptr;
    published_ = stats_;
  }

  /// Attach (or detach, with nullptr) a cancel token; see step().
  void set_cancel(const CancelToken* token) noexcept { poll_ = CancelPoll(token); }

  void reset(Value v) {
    for (Value& x : values_) x = v;
    for (const Gate& g : nl_.gates()) {
      if (g.type == GateType::Const0) values_[g.output.value] = Traits::from_bit(0);
      if (g.type == GateType::Const1) values_[g.output.value] = Traits::from_bit(1);
    }
    first_step_ = true;
  }

 private:
  void publish_metrics() noexcept {
    if (!metric_vectors_) return;
    metric_vectors_->add(stats_.vectors - published_.vectors);
    metric_events_->add(stats_.events - published_.events);
    metric_gate_evals_->add(stats_.gate_evals - published_.gate_evals);
    published_ = stats_;
  }

  [[nodiscard]] std::size_t ring_slot(std::uint32_t net, std::int64_t t) const {
    return net * ring_size_ +
           static_cast<std::size_t>(t % static_cast<std::int64_t>(ring_size_));
  }

  /// Transport-delay scheduling. `now` is the time of the evaluation that
  /// produced this event; a net's driver has a fixed delay, so new targets
  /// never precede outstanding ones, and the newest pending value is the
  /// correct basis for cancellation.
  void schedule(NetId net, Value v, std::int64_t target, std::int64_t now) {
    const std::uint32_t n = net.value;
    const std::size_t rs = ring_slot(n, target);
    if (ring_time_[rs] == target) {
      // A later wave of the same step re-targets the same event.
      ring_value_[rs] = v;
      last_target_value_[n] = v;
      return;
    }
    const Value projected =
        last_target_time_[n] > now ? last_target_value_[n] : values_[n];
    if (v == projected) return;  // no change relative to what will be current
    ring_time_[rs] = target;
    ring_value_[rs] = v;
    last_target_time_[n] = target;
    last_target_value_[n] = v;
    wheel_[static_cast<std::size_t>(target % static_cast<std::int64_t>(wheel_.size()))]
        .push_back(n);
  }

  Netlist nl_;  ///< lowered private copy
  Levelization lv_;
  std::vector<Value> values_;
  std::size_t ring_size_ = 2;
  std::vector<std::int64_t> ring_time_;
  std::vector<Value> ring_value_;
  std::vector<std::int64_t> last_target_time_;
  std::vector<Value> last_target_value_;
  std::vector<std::vector<std::uint32_t>> wheel_;
  std::int64_t base_time_ = 0;
  bool first_step_ = true;
  std::vector<ChangeRecord<Value>> changes_;
  EventSimStats stats_;
  MetricCounter* metric_vectors_ = nullptr;
  MetricCounter* metric_events_ = nullptr;
  MetricCounter* metric_gate_evals_ = nullptr;
  EventSimStats published_;
  CancelPoll poll_{nullptr};
};

}  // namespace detail

/// Two-valued interpreted event-driven unit-delay simulator.
using EventSim2 = detail::EventSimT<detail::TwoValuedTraits>;
/// Three-valued (0/1/X) interpreted event-driven unit-delay simulator —
/// "the more natural model for event-driven simulation" per the paper.
using EventSim3 = detail::EventSimT<detail::ThreeValuedTraits>;

}  // namespace udsim
