// Interpreted zero-delay (selective-trace) event-driven simulation.
//
// The paper cites a zero-delay context experiment: "on the average a
// compiled simulation runs in 1/23 the time of an interpreted simulation".
// This is the interpreted side of that pair (the compiled side is the
// zero-delay LCC engine in src/lcc/).
#pragma once

#include <queue>
#include <span>
#include <stdexcept>
#include <vector>

#include "analysis/levelize.h"
#include "netlist/netlist.h"

namespace udsim {

class ZeroDelayEventSim {
 public:
  explicit ZeroDelayEventSim(const Netlist& nl);

  /// Propagate one input vector to quiescence (final values only — there is
  /// no time dimension in a zero-delay model).
  void step(std::span<const Bit> pi_values);

  [[nodiscard]] Bit value(NetId n) const { return values_.at(n.value); }
  [[nodiscard]] std::uint64_t gate_evals() const noexcept { return gate_evals_; }

 private:
  Netlist nl_;  ///< lowered private copy
  std::vector<GateId> order_;
  std::vector<std::uint32_t> topo_pos_;  ///< gate id -> position in order_
  std::vector<Bit> values_;
  std::vector<bool> dirty_;
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>, std::greater<>> work_;
  bool first_step_ = true;
  std::uint64_t gate_evals_ = 0;
};

}  // namespace udsim
