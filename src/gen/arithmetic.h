// Structured arithmetic circuit generators.
//
// The ISCAS-85 evaluation circuit c6288 is a 16×16 array multiplier built
// from NOR-implemented full/half adders (2406 gates, 125 logic levels); the
// `array_multiplier` generator reproduces that structure. Ripple-carry
// adders provide deep carry chains for directed tests.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace udsim {

/// n-bit ripple-carry adder: inputs a0..a{n-1}, b0..b{n-1}, cin;
/// outputs s0..s{n-1}, cout. 5 gates per full adder, depth ~2n+1.
[[nodiscard]] Netlist ripple_carry_adder(int bits, const std::string& name = "rca");

/// n×m array (carry-save) multiplier in the style of c6288: an AND partial-
/// product matrix feeding rows of NOR-based full adders with a final ripple
/// stage. Inputs a0..a{n-1}, b0..b{m-1}; outputs p0..p{n+m-1}.
[[nodiscard]] Netlist array_multiplier(int n, int m, const std::string& name = "mult");

}  // namespace udsim
