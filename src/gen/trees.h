// Tree-structured combinational generators: parity/ECC networks (the
// c499/c1355 family is a 32-bit single-error-correcting circuit), mux trees
// and comparators for the example programs and tests.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace udsim {

/// Balanced XOR parity tree over `width` inputs; output "parity".
[[nodiscard]] Netlist parity_tree(int width, const std::string& name = "parity");

/// Single-error-correcting network in the style of c499: `data_bits` data
/// inputs and ceil(log2(data_bits))+1 check-bit inputs feed balanced XOR
/// syndrome trees; AND decoders flip the faulty bit; outputs are the
/// corrected data word.
[[nodiscard]] Netlist ecc_corrector(int data_bits, const std::string& name = "ecc");

/// 2^select_bits : 1 multiplexer tree; data inputs d0.., selects s0..,
/// output "y".
[[nodiscard]] Netlist mux_tree(int select_bits, const std::string& name = "mux");

/// n-bit magnitude comparator; outputs "eq" and "gt" (a > b).
[[nodiscard]] Netlist comparator(int bits, const std::string& name = "cmp");

}  // namespace udsim
