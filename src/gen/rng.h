// Deterministic xoshiro256** PRNG (seeded via splitmix64) so that every
// generated circuit and every benchmark vector stream is reproducible.
#pragma once

#include <cstdint>

namespace udsim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 state expansion.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept { return n ? next() % n : 0; }

  /// Uniform bit.
  std::uint32_t bit() noexcept { return static_cast<std::uint32_t>(next() >> 63); }

  /// True with probability p (0..1).
  bool chance(double p) noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace udsim
