#include "gen/random_dag.h"

#include <algorithm>
#include <stdexcept>

#include "gen/rng.h"

namespace udsim {

namespace {

GateType pick_type(Rng& rng, const RandomDagParams& p, std::size_t fanin) {
  if (fanin == 1) {
    return rng.chance(0.7) ? GateType::Not : GateType::Buf;
  }
  if (rng.chance(p.xor_fraction)) {
    return rng.chance(0.5) ? GateType::Xor : GateType::Xnor;
  }
  switch (rng.below(4)) {
    case 0:
      return GateType::And;
    case 1:
      return GateType::Nand;
    case 2:
      return GateType::Or;
    default:
      return GateType::Nor;
  }
}

}  // namespace

Netlist random_dag(const RandomDagParams& p) {
  if (p.depth < 1 || p.gates < static_cast<std::size_t>(p.depth)) {
    throw NetlistError("random_dag: need gates >= depth >= 1");
  }
  if (p.inputs == 0) throw NetlistError("random_dag: need at least one input");
  Rng rng(p.seed);
  Netlist nl(p.name);

  // Level 0: primary inputs.
  std::vector<std::vector<NetId>> by_level(static_cast<std::size_t>(p.depth) + 1);
  for (std::size_t i = 0; i < p.inputs; ++i) {
    const NetId n = nl.add_net("i" + std::to_string(i));
    nl.mark_primary_input(n);
    by_level[0].push_back(n);
  }

  // Distribute gates over levels 1..depth, at least one per level so the
  // depth is exact. Level 1 is sized to absorb the primary inputs (real
  // circuits front-load input logic); the rest go to random levels with a
  // mild bias toward the middle of the circuit.
  std::vector<std::size_t> level_gates(static_cast<std::size_t>(p.depth) + 1, 0);
  for (int l = 1; l <= p.depth; ++l) level_gates[static_cast<std::size_t>(l)] = 1;
  std::size_t placed = static_cast<std::size_t>(p.depth);
  const std::size_t front = std::min(p.inputs / 2, (p.gates - placed) / 2);
  level_gates[1] += front;
  placed += front;
  for (std::size_t g = placed; g < p.gates; ++g) {
    const double u = (rng.uniform() + rng.uniform()) / 2.0;  // triangular
    int l = 1 + static_cast<int>(u * p.depth);
    l = std::clamp(l, 1, p.depth);
    ++level_gates[static_cast<std::size_t>(l)];
  }

  // Primary inputs not yet consumed by any pin; drained preferentially so
  // that (like ISCAS-85) every input observably drives logic.
  std::vector<NetId> unused_pis = by_level[0];
  const auto take_unused_pi = [&]() {
    const std::size_t k = rng.below(unused_pis.size());
    const NetId n = unused_pis[k];
    unused_pis[k] = unused_pis.back();
    unused_pis.pop_back();
    return n;
  };

  // Per-level stacks of nets no pin has consumed yet (lazy-pruned). Drawing
  // from these first grows fanout-free tree regions.
  std::vector<std::vector<NetId>> fresh(static_cast<std::size_t>(p.depth) + 1);
  fresh[0] = by_level[0];
  const auto pick_from_level = [&](int level) {
    auto& pool = by_level[static_cast<std::size_t>(level)];
    auto& unconsumed = fresh[static_cast<std::size_t>(level)];
    if (rng.chance(p.tree_bias)) {
      while (!unconsumed.empty()) {
        const NetId n = unconsumed.back();
        unconsumed.pop_back();
        if (nl.net(n).fanout.empty()) return n;
      }
    }
    return pool[rng.below(pool.size())];
  };

  std::size_t gate_no = 0;
  for (int l = 1; l <= p.depth; ++l) {
    for (std::size_t k = 0; k < level_gates[static_cast<std::size_t>(l)]; ++k) {
      std::size_t fanin =
          1 + rng.below(static_cast<std::uint64_t>(p.max_fanin));
      if (fanin > 1 && rng.chance(p.inv_fraction)) fanin = 1;
      std::vector<NetId> ins;
      ins.reserve(fanin);
      // First pin from level l-1 so the gate's level is exactly l.
      if (l == 1 && !unused_pis.empty()) {
        ins.push_back(take_unused_pi());
      } else {
        ins.push_back(pick_from_level(l - 1));
      }
      for (std::size_t j = 1; j < fanin; ++j) {
        // Drain unused primary inputs near the inputs only; a PI pin on a
        // deep gate would crash that gate's minlevel and inflate PC-sets
        // beyond anything the reach parameter models.
        if (l <= 2 && !unused_pis.empty()) {
          ins.push_back(take_unused_pi());
          continue;
        }
        // Geometric reach-back controlled by p.reach.
        int back = 1;
        while (back < l && rng.chance(1.0 - 1.0 / (1.0 + p.reach))) ++back;
        ins.push_back(pick_from_level(l - back));
      }
      const GateType t = pick_type(rng, p, ins.size());
      const NetId out = nl.add_net("n" + std::to_string(l) + "_" + std::to_string(gate_no++));
      const GateId gid = nl.add_gate(t, std::move(ins), out);
      if (p.max_delay > 1) {
        nl.set_delay(gid, 1 + static_cast<int>(rng.below(
                               static_cast<std::uint64_t>(p.max_delay))));
      }
      by_level[static_cast<std::size_t>(l)].push_back(out);
      fresh[static_cast<std::size_t>(l)].push_back(out);
    }
  }

  // Every primary input must feed something: attach leftovers as extra pins
  // on existing n-ary gates (a level-0 pin never changes a gate's level, so
  // depth and gate count stay exact).
  if (!unused_pis.empty()) {
    // Prefer shallow gates: a PI pin on a deep gate would crash its
    // minlevel and distort the PC-set profile.
    std::vector<GateId> nary;
    for (int l = 1; l <= p.depth && nary.size() < unused_pis.size(); ++l) {
      for (NetId out : by_level[static_cast<std::size_t>(l)]) {
        for (GateId g : nl.net(out).drivers) {
          const GateType t = nl.gate(g).type;
          if (!is_unary(t) && !is_constant(t)) nary.push_back(g);
        }
      }
    }
    if (nary.empty()) {
      throw NetlistError("random_dag: no n-ary gate available to absorb inputs");
    }
    for (std::size_t i = 0; i < unused_pis.size(); ++i) {
      nl.add_gate_input(nary[i % nary.size()], unused_pis[i]);
    }
  }

  // Primary outputs: every sink (net without fanout) plus random deep nets
  // until the requested count is reached.
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(NetId{n});
    if (net.fanout.empty() && !net.is_primary_input) {
      nl.mark_primary_output(NetId{n});
    }
  }
  std::size_t guard = 0;
  while (nl.primary_outputs().size() < p.outputs && guard < 10 * p.outputs) {
    ++guard;
    const int l = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(p.depth)));
    const auto& pool = by_level[static_cast<std::size_t>(l)];
    if (pool.empty()) continue;
    const NetId n = pool[rng.below(pool.size())];
    if (!nl.net(n).is_primary_output) nl.mark_primary_output(n);
  }

  nl.validate();
  return nl;
}

}  // namespace udsim
