// ISCAS-85-like workload profiles.
//
// The paper evaluates on the ten ISCAS-85 combinational benchmarks. Those
// netlists are not redistributable here, so each circuit gets a *profile*: a
// seeded synthetic recipe matched to its published primary-input/output and
// gate counts and to the level counts the paper reports in Fig. 20. The
// techniques' costs are functions of exactly these structural quantities
// (see DESIGN.md §2), so the profiles reproduce the shape of every table.
// Real `.bench` files can be loaded with read_bench_file() instead and run
// through the same harnesses unchanged.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace udsim {

struct IscasProfile {
  std::string name;      ///< "c432" ... "c7552"
  std::size_t inputs;    ///< published PI count
  std::size_t outputs;   ///< published PO count
  std::size_t gates;     ///< published gate count (= paper Fig. 21 column 1)
  int levels;            ///< paper Fig. 20 level count (depth + 1)
  double reach;          ///< random-DAG reach-back tuning (PC-set width)
  double xor_fraction;   ///< XOR-rich circuits: c499/c1355 parity family
  bool multiplier;       ///< c6288: generated as a real array multiplier
};

/// The ten paper circuits, in paper order.
[[nodiscard]] const std::vector<IscasProfile>& iscas85_profiles();

/// Look up one profile by name; throws NetlistError if unknown.
[[nodiscard]] const IscasProfile& iscas85_profile(const std::string& name);

/// Build the synthetic stand-in for the named circuit. `seed` perturbs the
/// random-DAG recipes (the multiplier is deterministic).
[[nodiscard]] Netlist make_iscas85_like(const std::string& name,
                                        std::uint64_t seed = 1);

/// Sequential (ISCAS-89-style) profiles: published PI/PO/DFF/gate counts;
/// logic depth is chosen structurally (not published in the paper).
struct Iscas89Profile {
  std::string name;  ///< "s27" ... "s5378"
  std::size_t inputs;
  std::size_t outputs;
  std::size_t registers;
  std::size_t gates;
  int depth;
};

[[nodiscard]] const std::vector<Iscas89Profile>& iscas89_profiles();
[[nodiscard]] const Iscas89Profile& iscas89_profile(const std::string& name);

/// Synthetic stand-in Moore machine for the named ISCAS-89 circuit (cyclic
/// through its flip-flops; break with break_flip_flops before simulating).
[[nodiscard]] Netlist make_iscas89_like(const std::string& name,
                                        std::uint64_t seed = 1);

}  // namespace udsim
