#include "gen/datapath.h"

namespace udsim {

namespace {

/// 2:1 mux y = sel ? b : a (3 gates; sel_n supplied by the caller).
NetId mux2(Netlist& nl, NetId a, NetId b, NetId sel, NetId sel_n,
           const std::string& tag) {
  const NetId lo = nl.add_net(tag + "_lo");
  nl.add_gate(GateType::And, {a, sel_n}, lo);
  const NetId hi = nl.add_net(tag + "_hi");
  nl.add_gate(GateType::And, {b, sel}, hi);
  const NetId y = nl.add_net(tag);
  nl.add_gate(GateType::Or, {lo, hi}, y);
  return y;
}

}  // namespace

Netlist barrel_shifter(int stages, const std::string& name) {
  if (stages < 1 || stages > 6) {
    throw NetlistError("barrel_shifter: need 1 <= stages <= 6");
  }
  Netlist nl(name);
  const int n = 1 << stages;
  std::vector<NetId> data;
  for (int i = 0; i < n; ++i) {
    data.push_back(nl.add_net("d" + std::to_string(i)));
    nl.mark_primary_input(data.back());
  }
  std::vector<NetId> sel, sel_n;
  for (int s = 0; s < stages; ++s) {
    sel.push_back(nl.add_net("s" + std::to_string(s)));
    nl.mark_primary_input(sel.back());
    const NetId inv = nl.add_net("sn" + std::to_string(s));
    nl.add_gate(GateType::Not, {sel.back()}, inv);
    sel_n.push_back(inv);
  }
  // Stage s rotates left by 2^s when its select bit is set.
  std::vector<NetId> cur = data;
  for (int s = 0; s < stages; ++s) {
    const int rot = 1 << s;
    std::vector<NetId> next(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      // Rotated-left source of output bit i is input bit (i - rot) mod n.
      const int src = ((i - rot) % n + n) % n;
      next[static_cast<std::size_t>(i)] =
          mux2(nl, cur[static_cast<std::size_t>(i)], cur[static_cast<std::size_t>(src)],
               sel[static_cast<std::size_t>(s)], sel_n[static_cast<std::size_t>(s)],
               "m" + std::to_string(s) + "_" + std::to_string(i));
    }
    cur = std::move(next);
  }
  for (int i = 0; i < n; ++i) {
    const NetId y = nl.add_net("y" + std::to_string(i));
    nl.add_gate(GateType::Buf, {cur[static_cast<std::size_t>(i)]}, y);
    nl.mark_primary_output(y);
  }
  nl.validate();
  return nl;
}

Netlist priority_encoder(int n, const std::string& name) {
  if (n < 2 || n > 64) throw NetlistError("priority_encoder: need 2 <= n <= 64");
  Netlist nl(name);
  std::vector<NetId> in;
  for (int i = 0; i < n; ++i) {
    in.push_back(nl.add_net("i" + std::to_string(i)));
    nl.mark_primary_input(in.back());
  }
  // higher[i] = OR of inputs above i; grant[i] = in[i] AND NOT higher[i].
  std::vector<NetId> grant(static_cast<std::size_t>(n));
  NetId higher{};  // OR of inputs processed so far (from the top)
  for (int i = n - 1; i >= 0; --i) {
    if (!higher.valid()) {
      grant[static_cast<std::size_t>(i)] = in[static_cast<std::size_t>(i)];
      higher = in[static_cast<std::size_t>(i)];
      continue;
    }
    const NetId hn = nl.add_net("hn" + std::to_string(i));
    nl.add_gate(GateType::Not, {higher}, hn);
    const NetId g = nl.add_net("g" + std::to_string(i));
    nl.add_gate(GateType::And, {in[static_cast<std::size_t>(i)], hn}, g);
    grant[static_cast<std::size_t>(i)] = g;
    const NetId h = nl.add_net("h" + std::to_string(i));
    nl.add_gate(GateType::Or, {higher, in[static_cast<std::size_t>(i)]}, h);
    higher = h;
  }
  const NetId any = nl.add_net("any");
  nl.add_gate(GateType::Buf, {higher}, any);
  nl.mark_primary_output(any);
  // Encoded index bit b = OR of grants whose index has bit b set.
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  for (int b = 0; b < bits; ++b) {
    std::vector<NetId> pins;
    for (int i = 0; i < n; ++i) {
      if ((i >> b) & 1) pins.push_back(grant[static_cast<std::size_t>(i)]);
    }
    const NetId e = nl.add_net("e" + std::to_string(b));
    if (pins.empty()) {
      nl.add_gate(GateType::Const0, {}, e);
    } else {
      nl.add_gate(GateType::Or, std::move(pins), e);
    }
    nl.mark_primary_output(e);
  }
  nl.validate();
  return nl;
}

Netlist alu(int bits, const std::string& name) {
  if (bits < 1 || bits > 64) throw NetlistError("alu: need 1 <= bits <= 64");
  Netlist nl(name);
  std::vector<NetId> a, b;
  for (int i = 0; i < bits; ++i) {
    a.push_back(nl.add_net("a" + std::to_string(i)));
    b.push_back(nl.add_net("b" + std::to_string(i)));
    nl.mark_primary_input(a.back());
    nl.mark_primary_input(b.back());
  }
  const NetId op0 = nl.add_net("op0");
  const NetId op1 = nl.add_net("op1");
  nl.mark_primary_input(op0);
  nl.mark_primary_input(op1);
  const NetId op0n = nl.add_net("op0n");
  nl.add_gate(GateType::Not, {op0}, op0n);
  const NetId op1n = nl.add_net("op1n");
  nl.add_gate(GateType::Not, {op1}, op1n);

  // Adder chain (op 00).
  std::vector<NetId> sum(static_cast<std::size_t>(bits));
  NetId carry{};
  for (int i = 0; i < bits; ++i) {
    const std::string tag = "fa" + std::to_string(i);
    const NetId x = nl.add_net(tag + "_x");
    nl.add_gate(GateType::Xor, {a[static_cast<std::size_t>(i)],
                                b[static_cast<std::size_t>(i)]}, x);
    if (!carry.valid()) {
      sum[static_cast<std::size_t>(i)] = x;
      const NetId c = nl.add_net(tag + "_c");
      nl.add_gate(GateType::And, {a[0], b[0]}, c);
      carry = c;
      continue;
    }
    const NetId s = nl.add_net(tag + "_s");
    nl.add_gate(GateType::Xor, {x, carry}, s);
    sum[static_cast<std::size_t>(i)] = s;
    const NetId g = nl.add_net(tag + "_g");
    nl.add_gate(GateType::And, {a[static_cast<std::size_t>(i)],
                                b[static_cast<std::size_t>(i)]}, g);
    const NetId pr = nl.add_net(tag + "_p");
    nl.add_gate(GateType::And, {x, carry}, pr);
    const NetId c = nl.add_net(tag + "_co");
    nl.add_gate(GateType::Or, {g, pr}, c);
    carry = c;
  }
  const NetId cout = nl.add_net("cout");
  // cout is meaningful only for ADD; gate it with the opcode decode.
  const NetId is_add = nl.add_net("is_add");
  nl.add_gate(GateType::And, {op0n, op1n}, is_add);
  nl.add_gate(GateType::And, {carry, is_add}, cout);
  nl.mark_primary_output(cout);

  // Per-bit result mux over {sum, and, or, xor}.
  for (int i = 0; i < bits; ++i) {
    const std::string tag = "r" + std::to_string(i);
    const NetId andb = nl.add_net(tag + "_and");
    nl.add_gate(GateType::And, {a[static_cast<std::size_t>(i)],
                                b[static_cast<std::size_t>(i)]}, andb);
    const NetId orb = nl.add_net(tag + "_or");
    nl.add_gate(GateType::Or, {a[static_cast<std::size_t>(i)],
                               b[static_cast<std::size_t>(i)]}, orb);
    const NetId xorb = nl.add_net(tag + "_xor");
    nl.add_gate(GateType::Xor, {a[static_cast<std::size_t>(i)],
                                b[static_cast<std::size_t>(i)]}, xorb);
    // First level: select by op0 (add/and) and (or/xor).
    const NetId m0 = mux2(nl, sum[static_cast<std::size_t>(i)], andb, op0, op0n,
                          tag + "_m0");
    const NetId m1 = mux2(nl, orb, xorb, op0, op0n, tag + "_m1");
    // Second level: select by op1.
    const NetId y = mux2(nl, m0, m1, op1, op1n, tag + "_y");
    const NetId out = nl.add_net("y" + std::to_string(i));
    nl.add_gate(GateType::Buf, {y}, out);
    nl.mark_primary_output(out);
  }
  nl.validate();
  return nl;
}

}  // namespace udsim
