#include "gen/trees.h"

#include <cmath>

namespace udsim {

namespace {

/// Balanced binary XOR reduction of `leaves`; returns the root net.
NetId xor_reduce(Netlist& nl, std::vector<NetId> leaves, const std::string& tag) {
  int stage = 0;
  while (leaves.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
      const NetId o = nl.add_net(tag + "_x" + std::to_string(stage) + "_" +
                                 std::to_string(i / 2));
      nl.add_gate(GateType::Xor, {leaves[i], leaves[i + 1]}, o);
      next.push_back(o);
    }
    if (leaves.size() % 2) next.push_back(leaves.back());
    leaves = std::move(next);
    ++stage;
  }
  return leaves.front();
}

}  // namespace

Netlist parity_tree(int width, const std::string& name) {
  if (width < 2) throw NetlistError("parity_tree: need width >= 2");
  Netlist nl(name);
  std::vector<NetId> ins;
  for (int i = 0; i < width; ++i) {
    const NetId n = nl.add_net("i" + std::to_string(i));
    nl.mark_primary_input(n);
    ins.push_back(n);
  }
  const NetId root = xor_reduce(nl, std::move(ins), "p");
  nl.mark_primary_output(root);
  nl.validate();
  return nl;
}

Netlist ecc_corrector(int data_bits, const std::string& name) {
  if (data_bits < 4) throw NetlistError("ecc_corrector: need data_bits >= 4");
  Netlist nl(name);
  const int sbits = static_cast<int>(std::ceil(std::log2(data_bits))) + 1;

  std::vector<NetId> data, check;
  for (int i = 0; i < data_bits; ++i) {
    const NetId n = nl.add_net("d" + std::to_string(i));
    nl.mark_primary_input(n);
    data.push_back(n);
  }
  for (int s = 0; s < sbits; ++s) {
    const NetId n = nl.add_net("c" + std::to_string(s));
    nl.mark_primary_input(n);
    check.push_back(n);
  }

  // Syndrome s: parity of check bit s with every data bit whose index has
  // bit s set (syndrome 0 covers all: the overall-parity bit).
  std::vector<NetId> syndrome, syndrome_n;
  for (int s = 0; s < sbits; ++s) {
    std::vector<NetId> leaves{check[static_cast<std::size_t>(s)]};
    for (int i = 0; i < data_bits; ++i) {
      const bool covered = s == 0 || ((i >> (s - 1)) & 1);
      if (covered) leaves.push_back(data[static_cast<std::size_t>(i)]);
    }
    const NetId root = xor_reduce(nl, std::move(leaves), "s" + std::to_string(s));
    syndrome.push_back(root);
    const NetId inv = nl.add_net("sn" + std::to_string(s));
    nl.add_gate(GateType::Not, {root}, inv);
    syndrome_n.push_back(inv);
  }

  // Per data bit: decode its syndrome pattern and conditionally flip.
  for (int i = 0; i < data_bits; ++i) {
    std::vector<NetId> pins;
    pins.push_back(syndrome[0]);  // an error occurred
    for (int s = 1; s < sbits; ++s) {
      const bool bit = (i >> (s - 1)) & 1;
      pins.push_back(bit ? syndrome[static_cast<std::size_t>(s)]
                         : syndrome_n[static_cast<std::size_t>(s)]);
    }
    const NetId flip = nl.add_net("f" + std::to_string(i));
    nl.add_gate(GateType::And, std::move(pins), flip);
    const NetId corrected = nl.add_net("o" + std::to_string(i));
    nl.add_gate(GateType::Xor, {data[static_cast<std::size_t>(i)], flip}, corrected);
    nl.mark_primary_output(corrected);
  }
  nl.validate();
  return nl;
}

Netlist mux_tree(int select_bits, const std::string& name) {
  if (select_bits < 1 || select_bits > 16) {
    throw NetlistError("mux_tree: need 1 <= select_bits <= 16");
  }
  Netlist nl(name);
  const int n = 1 << select_bits;
  std::vector<NetId> layer;
  for (int i = 0; i < n; ++i) {
    const NetId d = nl.add_net("d" + std::to_string(i));
    nl.mark_primary_input(d);
    layer.push_back(d);
  }
  std::vector<NetId> sel, sel_n;
  for (int s = 0; s < select_bits; ++s) {
    const NetId sn = nl.add_net("s" + std::to_string(s));
    nl.mark_primary_input(sn);
    sel.push_back(sn);
    const NetId inv = nl.add_net("sn" + std::to_string(s));
    nl.add_gate(GateType::Not, {sn}, inv);
    sel_n.push_back(inv);
  }
  for (int s = 0; s < select_bits; ++s) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const std::string tag = "m" + std::to_string(s) + "_" + std::to_string(i / 2);
      const NetId lo = nl.add_net(tag + "_lo");
      nl.add_gate(GateType::And, {layer[i], sel_n[static_cast<std::size_t>(s)]}, lo);
      const NetId hi = nl.add_net(tag + "_hi");
      nl.add_gate(GateType::And, {layer[i + 1], sel[static_cast<std::size_t>(s)]}, hi);
      const NetId o = nl.add_net(tag);
      nl.add_gate(GateType::Or, {lo, hi}, o);
      next.push_back(o);
    }
    layer = std::move(next);
  }
  nl.mark_primary_output(layer.front());
  nl.validate();
  return nl;
}

Netlist comparator(int bits, const std::string& name) {
  if (bits < 1) throw NetlistError("comparator: need bits >= 1");
  Netlist nl(name);
  std::vector<NetId> a, b;
  for (int i = 0; i < bits; ++i) {
    a.push_back(nl.add_net("a" + std::to_string(i)));
    b.push_back(nl.add_net("b" + std::to_string(i)));
    nl.mark_primary_input(a.back());
    nl.mark_primary_input(b.back());
  }
  // Ripple from the most significant bit: eq_i, gt_i over bits i..n-1.
  NetId eq{}, gt{};
  for (int i = bits - 1; i >= 0; --i) {
    const std::string tag = "c" + std::to_string(i);
    const NetId e = nl.add_net(tag + "_e");
    nl.add_gate(GateType::Xnor, {a[static_cast<std::size_t>(i)],
                                 b[static_cast<std::size_t>(i)]}, e);
    const NetId bn = nl.add_net(tag + "_bn");
    nl.add_gate(GateType::Not, {b[static_cast<std::size_t>(i)]}, bn);
    const NetId g = nl.add_net(tag + "_g");
    nl.add_gate(GateType::And, {a[static_cast<std::size_t>(i)], bn}, g);
    if (i == bits - 1) {
      eq = e;
      gt = g;
    } else {
      const NetId eq2 = nl.add_net(tag + "_eq");
      nl.add_gate(GateType::And, {eq, e}, eq2);
      const NetId g2 = nl.add_net(tag + "_g2");
      nl.add_gate(GateType::And, {eq, g}, g2);
      const NetId gt2 = nl.add_net(tag + "_gt");
      nl.add_gate(GateType::Or, {gt, g2}, gt2);
      eq = eq2;
      gt = gt2;
    }
  }
  nl.mark_primary_output(eq);
  nl.mark_primary_output(gt);
  nl.validate();
  return nl;
}

}  // namespace udsim
