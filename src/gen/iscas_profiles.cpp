#include "gen/iscas_profiles.h"

#include "gen/arithmetic.h"
#include "gen/random_dag.h"
#include "gen/sequential.h"

namespace udsim {

const std::vector<IscasProfile>& iscas85_profiles() {
  // inputs/outputs/gates: published ISCAS-85 counts (gates matching the
  // paper's Fig. 21 unoptimized-shift column); levels: paper Fig. 20.
  // reach: tuned so PC-set sizes mirror the paper's PC-set-method anomalies
  // (large for the expanded-parity and deep circuits c1355/c1908, small for
  // c2670 — "the anomaly ... is due to the unusually small size of the
  // PC-sets for this circuit").
  static const std::vector<IscasProfile> profiles = {
      {"c432", 36, 7, 160, 18, 0.8, 0.30, false},
      {"c499", 41, 32, 202, 12, 0.8, 0.70, false},
      {"c880", 60, 26, 383, 25, 0.4, 0.30, false},
      {"c1355", 41, 32, 546, 25, 2.0, 0.60, false},
      {"c1908", 33, 25, 880, 41, 2.2, 0.35, false},
      {"c2670", 233, 140, 1269, 33, 0.2, 0.30, false},
      {"c3540", 50, 22, 1669, 48, 0.7, 0.35, false},
      {"c5315", 178, 123, 2307, 50, 0.5, 0.35, false},
      {"c6288", 32, 32, 2416, 125, 0.0, 0.00, true},
      {"c7552", 207, 108, 3513, 44, 0.5, 0.35, false},
  };
  return profiles;
}

const IscasProfile& iscas85_profile(const std::string& name) {
  for (const IscasProfile& p : iscas85_profiles()) {
    if (p.name == name) return p;
  }
  throw NetlistError("unknown ISCAS-85 profile '" + name + "'");
}

Netlist make_iscas85_like(const std::string& name, std::uint64_t seed) {
  const IscasProfile& p = iscas85_profile(name);
  if (p.multiplier) {
    // c6288 is a 16x16 array multiplier; generate the real structure.
    Netlist nl = array_multiplier(16, 16, p.name);
    return nl;
  }
  RandomDagParams params;
  params.name = p.name;
  params.inputs = p.inputs;
  params.outputs = p.outputs;
  params.gates = p.gates;
  // Fig. 20's "Levels" column is the bit-field width n = depth + 1, so the
  // logic depth to generate is levels - 1.
  params.depth = p.levels - 1;
  params.seed = seed * 0x9e3779b9u + 17;
  params.reach = p.reach;
  params.xor_fraction = p.xor_fraction;
  return random_dag(params);
}

const std::vector<Iscas89Profile>& iscas89_profiles() {
  // PI/PO/DFF/gate counts as published for the ISCAS-89 suite; depth chosen
  // structurally (roughly gates^(1/2), matching the suite's shallow style).
  static const std::vector<Iscas89Profile> profiles = {
      {"s27", 4, 1, 3, 10, 4},
      {"s298", 3, 6, 14, 119, 9},
      {"s344", 9, 11, 15, 160, 14},
      {"s386", 7, 7, 6, 159, 11},
      {"s641", 35, 24, 19, 379, 23},
      {"s1196", 14, 14, 18, 529, 24},
      {"s1488", 8, 19, 6, 653, 17},
      {"s5378", 35, 49, 164, 2779, 25},
  };
  return profiles;
}

const Iscas89Profile& iscas89_profile(const std::string& name) {
  for (const Iscas89Profile& p : iscas89_profiles()) {
    if (p.name == name) return p;
  }
  throw NetlistError("unknown ISCAS-89 profile '" + name + "'");
}

Netlist make_iscas89_like(const std::string& name, std::uint64_t seed) {
  const Iscas89Profile& p = iscas89_profile(name);
  SequentialDagParams params;
  params.name = p.name;
  params.inputs = p.inputs;
  params.outputs = p.outputs;
  params.registers = p.registers;
  params.gates = p.gates;
  params.depth = p.depth;
  params.seed = seed * 0x517cc1b7u + 3;
  return sequential_dag(params);
}

}  // namespace udsim
