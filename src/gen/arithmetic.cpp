#include "gen/arithmetic.h"

namespace udsim {

namespace {

struct FullAdderOut {
  NetId sum;
  NetId carry;
};

/// Standard 5-gate full adder (2 XOR, 2 AND, 1 OR).
FullAdderOut full_adder(Netlist& nl, NetId a, NetId b, NetId c,
                        const std::string& tag) {
  const NetId x = nl.add_net(tag + "_x");
  nl.add_gate(GateType::Xor, {a, b}, x);
  const NetId s = nl.add_net(tag + "_s");
  nl.add_gate(GateType::Xor, {x, c}, s);
  const NetId g = nl.add_net(tag + "_g");
  nl.add_gate(GateType::And, {a, b}, g);
  const NetId pr = nl.add_net(tag + "_p");
  nl.add_gate(GateType::And, {x, c}, pr);
  const NetId co = nl.add_net(tag + "_c");
  nl.add_gate(GateType::Or, {g, pr}, co);
  return {s, co};
}

/// 9-NOR full adder in the style of c6288's adder cells.
FullAdderOut nor_full_adder(Netlist& nl, NetId a, NetId b, NetId c,
                            const std::string& tag) {
  const auto nor2 = [&](NetId x, NetId y, const std::string& nm) {
    const NetId o = nl.add_net(tag + nm);
    nl.add_gate(GateType::Nor, {x, y}, o);
    return o;
  };
  const NetId n1 = nor2(a, b, "_n1");
  const NetId n2 = nor2(a, n1, "_n2");
  const NetId n3 = nor2(b, n1, "_n3");
  const NetId n4 = nor2(n2, n3, "_n4");  // XNOR(a, b)
  const NetId n5 = nor2(n4, c, "_n5");
  const NetId n6 = nor2(n4, n5, "_n6");
  const NetId n7 = nor2(c, n5, "_n7");
  const NetId sum = nor2(n6, n7, "_s");   // a ^ b ^ c
  const NetId carry = nor2(n1, n5, "_c"); // majority(a, b, c)
  return {sum, carry};
}

/// 3-gate half adder: carry = AND, sum = NOR(NOR(a,b), carry).
FullAdderOut nor_half_adder(Netlist& nl, NetId a, NetId b, const std::string& tag) {
  const NetId n1 = nl.add_net(tag + "_n1");
  nl.add_gate(GateType::Nor, {a, b}, n1);
  const NetId carry = nl.add_net(tag + "_c");
  nl.add_gate(GateType::And, {a, b}, carry);
  const NetId sum = nl.add_net(tag + "_s");
  nl.add_gate(GateType::Nor, {n1, carry}, sum);
  return {sum, carry};
}

}  // namespace

Netlist ripple_carry_adder(int bits, const std::string& name) {
  Netlist nl(name);
  std::vector<NetId> a(static_cast<std::size_t>(bits)), b(a.size());
  for (int i = 0; i < bits; ++i) {
    a[static_cast<std::size_t>(i)] = nl.add_net("a" + std::to_string(i));
    b[static_cast<std::size_t>(i)] = nl.add_net("b" + std::to_string(i));
    nl.mark_primary_input(a[static_cast<std::size_t>(i)]);
    nl.mark_primary_input(b[static_cast<std::size_t>(i)]);
  }
  const NetId cin = nl.add_net("cin");
  nl.mark_primary_input(cin);
  NetId carry = cin;
  for (int i = 0; i < bits; ++i) {
    const auto fa = full_adder(nl, a[static_cast<std::size_t>(i)],
                               b[static_cast<std::size_t>(i)], carry,
                               "fa" + std::to_string(i));
    nl.mark_primary_output(fa.sum);
    carry = fa.carry;
  }
  nl.mark_primary_output(carry);
  nl.validate();
  return nl;
}

Netlist array_multiplier(int n, int m, const std::string& name) {
  if (n < 2 || m < 2) throw NetlistError("array_multiplier: need n, m >= 2");
  Netlist nl(name);
  std::vector<NetId> a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(m));
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = nl.add_net("a" + std::to_string(i));
    nl.mark_primary_input(a[static_cast<std::size_t>(i)]);
  }
  for (int j = 0; j < m; ++j) {
    b[static_cast<std::size_t>(j)] = nl.add_net("b" + std::to_string(j));
    nl.mark_primary_input(b[static_cast<std::size_t>(j)]);
  }
  // Partial products.
  const auto pp = [&](int i, int j) {
    const NetId o = nl.add_net("pp" + std::to_string(i) + "_" + std::to_string(j));
    nl.add_gate(GateType::And,
                {a[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(i)]}, o);
    return o;
  };
  // Carry-save array, c6288's structure: each row absorbs one partial-
  // product row into a (sum, carry) pair per weight without intra-row
  // rippling; a final ripple row merges the saved carries. Cells adapt to
  // the operands actually present (FA, HA, or wire at the array edges).
  const auto cell = [&](std::vector<NetId> ops, const std::string& tag) {
    if (ops.size() == 1) return FullAdderOut{ops[0], NetId{}};
    if (ops.size() == 2) return nor_half_adder(nl, ops[0], ops[1], tag);
    return nor_full_adder(nl, ops[0], ops[1], ops[2], tag);
  };

  std::vector<NetId> sums(static_cast<std::size_t>(n));   // weights i..i+n-1
  std::vector<NetId> carries(static_cast<std::size_t>(n));// weights i..i+n-1
  for (int j = 0; j < n; ++j) sums[static_cast<std::size_t>(j)] = pp(0, j);
  std::vector<NetId> product;
  for (int i = 1; i < m; ++i) {
    product.push_back(sums[0]);  // weight i-1 is final
    std::vector<NetId> next_s(static_cast<std::size_t>(n));
    std::vector<NetId> next_c(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      std::vector<NetId> ops{pp(i, j)};
      if (j + 1 < n && sums[static_cast<std::size_t>(j + 1)].valid()) {
        ops.push_back(sums[static_cast<std::size_t>(j + 1)]);
      }
      if (carries[static_cast<std::size_t>(j)].valid()) {
        ops.push_back(carries[static_cast<std::size_t>(j)]);
      }
      const auto c = cell(std::move(ops),
                          "r" + std::to_string(i) + "c" + std::to_string(j));
      next_s[static_cast<std::size_t>(j)] = c.sum;
      next_c[static_cast<std::size_t>(j)] = c.carry;  // weight i+j+1
    }
    // carry(row i, pos j) has weight i+j+1, exactly what row i+1's position
    // j consumes (its own weight is (i+1)+j): no re-indexing needed.
    sums = std::move(next_s);
    carries = std::move(next_c);
  }
  // Final vector-merge: ripple-add the surviving sums and carries.
  NetId ripple{};
  for (int j = 0; j < n; ++j) {
    std::vector<NetId> ops;
    if (sums[static_cast<std::size_t>(j)].valid()) ops.push_back(sums[static_cast<std::size_t>(j)]);
    if (j > 0 && carries[static_cast<std::size_t>(j - 1)].valid()) {
      ops.push_back(carries[static_cast<std::size_t>(j - 1)]);
    }
    if (ripple.valid()) ops.push_back(ripple);
    const auto c = cell(std::move(ops), "f" + std::to_string(j));
    product.push_back(c.sum);
    ripple = c.carry;
  }
  // Top bit: surviving top-rail carry plus the ripple.
  {
    std::vector<NetId> ops;
    if (carries[static_cast<std::size_t>(n - 1)].valid()) {
      ops.push_back(carries[static_cast<std::size_t>(n - 1)]);
    }
    if (ripple.valid()) ops.push_back(ripple);
    if (ops.empty()) throw NetlistError("array_multiplier: missing top bit");
    const auto c = cell(std::move(ops), "ftop");
    product.push_back(c.sum);
  }
  for (NetId w : product) nl.mark_primary_output(w);
  nl.validate();
  return nl;
}

}  // namespace udsim
