// Sequential-circuit support (paper §1: "our algorithms can be applied to a
// wide variety of synchronous sequential circuits by requiring that any
// cycle in the network contain at least one flip-flop. The circuit could
// then be broken at the flip-flops by treating the flip-flop inputs as
// primary outputs and the outputs as primary inputs.")
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace udsim {

struct BrokenRegister {
  std::string name;     ///< flip-flop output net name in the original circuit
  NetId d;              ///< data net in the *broken* netlist (a primary output)
  NetId q;              ///< state net in the *broken* netlist (a primary input)
};

struct BrokenCircuit {
  Netlist comb;                      ///< acyclic combinational core
  std::vector<BrokenRegister> regs;  ///< q nets appended after original PIs
};

/// Break every Dff of a (possibly cyclic) synchronous netlist. The broken
/// core's primary inputs are the original inputs followed by one q input per
/// flip-flop (in gate order); the d nets are marked primary outputs.
[[nodiscard]] BrokenCircuit break_flip_flops(const Netlist& sequential);

/// n-bit synchronous binary counter with enable: DFFs + increment logic.
[[nodiscard]] Netlist counter(int bits, const std::string& name = "ctr");

/// Fibonacci LFSR over the given tap positions (e.g. {16,14,13,11}).
[[nodiscard]] Netlist lfsr(int bits, std::vector<int> taps,
                           const std::string& name = "lfsr");

struct SequentialDagParams {
  std::string name = "seq";
  std::size_t inputs = 8;       ///< external primary inputs
  std::size_t outputs = 4;      ///< observed outputs
  std::size_t registers = 8;    ///< D flip-flops
  std::size_t gates = 100;      ///< combinational gates
  int depth = 8;                ///< combinational logic depth
  std::uint64_t seed = 1;
  double xor_fraction = 0.25;
};

/// Seeded synchronous Moore machine in the style of the ISCAS-89 circuits:
/// a random combinational core whose inputs are the external inputs plus
/// the register outputs, with `registers` of its nets fed back through
/// DFFs. Cyclic through the flip-flops; use break_flip_flops() to simulate.
[[nodiscard]] Netlist sequential_dag(const SequentialDagParams& params);

}  // namespace udsim
