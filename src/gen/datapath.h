// Wider datapath generators: barrel shifter, priority encoder, and a small
// ALU — realistic structured workloads beyond the arithmetic/tree families.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace udsim {

/// Logarithmic barrel shifter: rotates an n-bit word (n = 2^stages) left by
/// the `stages`-bit amount. Inputs d0.., s0..; outputs y0..y{n-1}.
[[nodiscard]] Netlist barrel_shifter(int stages, const std::string& name = "bsh");

/// Priority encoder over n inputs (n >= 2): outputs the index of the
/// highest-numbered asserted input (e0..) plus "any" (valid flag).
[[nodiscard]] Netlist priority_encoder(int n, const std::string& name = "penc");

/// Small ALU over two n-bit operands with a 2-bit opcode:
///   op=00 ADD (with carry-out "cout"), op=01 AND, op=10 OR, op=11 XOR.
/// Outputs y0..y{n-1}, cout.
[[nodiscard]] Netlist alu(int bits, const std::string& name = "alu");

}  // namespace udsim
