// Seeded leveled random-DAG circuit generator.
//
// Produces acyclic gate-level circuits with an exact logic depth, a target
// gate count, and tunable structure: the `reach` parameter controls how far
// back (in levels) a gate's extra inputs may connect, which directly shapes
// PC-set sizes (small reach -> narrow PC-sets like c2670, large reach ->
// wide PC-sets like c1355/c1908). This is what stands in for the ISCAS-85
// netlists; see DESIGN.md §2 for the substitution argument.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace udsim {

struct RandomDagParams {
  std::string name = "rand";
  std::size_t inputs = 8;
  std::size_t outputs = 4;
  std::size_t gates = 64;
  int depth = 8;             ///< exact logic depth (max level)
  std::uint64_t seed = 1;
  double reach = 1.5;        ///< mean extra-level reach-back of non-chain pins
  double xor_fraction = 0.05;///< probability mass given to XOR/XNOR gates
  double inv_fraction = 0.2; ///< probability mass given to NOT/BUF gates
  int max_fanin = 3;
  /// Probability that a pin consumes a not-yet-used net of its level rather
  /// than a random one. High values produce the large fanout-free (tree)
  /// regions real circuits have — the regions path-tracing simulates without
  /// shifts — and keep the retained-shift fraction near ISCAS-85's ~40%.
  double tree_bias = 0.7;
  /// Maximum per-gate delay. 1 = the paper's strict unit-delay model;
  /// larger values draw each gate's delay uniformly from [1, max_delay]
  /// (the multi-delay timing-model extension). Note that `depth` then
  /// counts topological layers, not time units.
  int max_delay = 1;
};

/// Generate. Guarantees: acyclic; exact depth (requires gates >= depth);
/// every primary input feeds at least one gate; every net without fanout is
/// a primary output (so the whole circuit is observable, as in ISCAS-85);
/// at least `outputs` primary outputs.
[[nodiscard]] Netlist random_dag(const RandomDagParams& params);

}  // namespace udsim
