#include "gen/sequential.h"

#include <algorithm>

#include "gen/random_dag.h"
#include "gen/rng.h"

namespace udsim {

BrokenCircuit break_flip_flops(const Netlist& seq) {
  BrokenCircuit out;
  out.comb = Netlist(seq.name() + "_comb");
  for (const Net& n : seq.nets()) {
    out.comb.add_net(n.name);
  }
  for (std::uint32_t gi = 0; gi < seq.gate_count(); ++gi) {
    const Gate& g = seq.gate(GateId{gi});
    if (g.type == GateType::Dff) continue;
    const GateId ng = out.comb.add_gate(g.type, g.inputs, g.output);
    out.comb.set_delay(ng, seq.delay(GateId{gi}));
  }
  for (NetId pi : seq.primary_inputs()) out.comb.mark_primary_input(pi);
  for (NetId po : seq.primary_outputs()) out.comb.mark_primary_output(po);
  for (std::uint32_t gi = 0; gi < seq.gate_count(); ++gi) {
    const Gate& g = seq.gate(GateId{gi});
    if (g.type != GateType::Dff) continue;
    BrokenRegister reg;
    reg.name = seq.net(g.output).name;
    reg.d = g.inputs.front();
    reg.q = g.output;
    out.comb.mark_primary_input(reg.q);
    out.comb.mark_primary_output(reg.d);
    out.regs.push_back(std::move(reg));
  }
  out.comb.validate();
  return out;
}

Netlist counter(int bits, const std::string& name) {
  if (bits < 1) throw NetlistError("counter: need bits >= 1");
  Netlist nl(name);
  const NetId en = nl.add_net("en");
  nl.mark_primary_input(en);
  std::vector<NetId> q(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    q[static_cast<std::size_t>(i)] = nl.add_net("q" + std::to_string(i));
    nl.mark_primary_output(q[static_cast<std::size_t>(i)]);
  }
  NetId carry = en;  // count-enable ripples up like a carry
  for (int i = 0; i < bits; ++i) {
    const std::string tag = "b" + std::to_string(i);
    const NetId d = nl.add_net(tag + "_d");
    nl.add_gate(GateType::Xor, {q[static_cast<std::size_t>(i)], carry}, d);
    nl.add_gate(GateType::Dff, {d}, q[static_cast<std::size_t>(i)]);
    if (i + 1 < bits) {
      const NetId c = nl.add_net(tag + "_c");
      nl.add_gate(GateType::And, {carry, q[static_cast<std::size_t>(i)]}, c);
      carry = c;
    }
  }
  return nl;  // cyclic through the DFFs: no validate() here
}

Netlist lfsr(int bits, std::vector<int> taps, const std::string& name) {
  if (bits < 2) throw NetlistError("lfsr: need bits >= 2");
  for (int t : taps) {
    if (t < 1 || t > bits) throw NetlistError("lfsr: tap out of range");
  }
  Netlist nl(name);
  const NetId seed_in = nl.add_net("seed");
  nl.mark_primary_input(seed_in);
  std::vector<NetId> q(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    q[static_cast<std::size_t>(i)] = nl.add_net("q" + std::to_string(i));
  }
  nl.mark_primary_output(q.back());
  // Feedback: XOR of tap bits, XORed with the external seed input so the
  // register can be perturbed from outside.
  std::vector<NetId> fb_pins;
  for (int t : taps) fb_pins.push_back(q[static_cast<std::size_t>(t - 1)]);
  fb_pins.push_back(seed_in);
  const NetId fb = nl.add_net("fb");
  nl.add_gate(GateType::Xor, std::move(fb_pins), fb);
  nl.add_gate(GateType::Dff, {fb}, q[0]);
  for (int i = 1; i < bits; ++i) {
    nl.add_gate(GateType::Dff, {q[static_cast<std::size_t>(i - 1)]},
                q[static_cast<std::size_t>(i)]);
  }
  return nl;  // cyclic through the DFFs: no validate() here
}

Netlist sequential_dag(const SequentialDagParams& p) {
  // Build the combinational core with state bits as extra inputs.
  RandomDagParams cp;
  cp.name = p.name + "_core";
  cp.inputs = p.inputs + p.registers;
  cp.outputs = p.outputs + p.registers;
  cp.gates = p.gates;
  cp.depth = p.depth;
  cp.seed = p.seed;
  cp.xor_fraction = p.xor_fraction;
  const Netlist core = random_dag(cp);

  // Re-emit as a sequential netlist: the last `registers` core inputs
  // become DFF outputs (q nets), fed from `registers` distinct core outputs.
  Netlist nl(p.name);
  for (const Net& n : core.nets()) {
    (void)nl.add_net(n.name);
  }
  for (std::uint32_t gi = 0; gi < core.gate_count(); ++gi) {
    const Gate& g = core.gate(GateId{gi});
    const GateId ng = nl.add_gate(g.type, g.inputs, g.output);
    nl.set_delay(ng, core.delay(GateId{gi}));
  }
  for (std::size_t i = 0; i < p.inputs; ++i) {
    nl.mark_primary_input(core.primary_inputs()[i]);
  }
  for (std::size_t i = 0; i < p.outputs && i < core.primary_outputs().size(); ++i) {
    nl.mark_primary_output(core.primary_outputs()[i]);
  }
  // Feed each state input from a deep core output via a DFF. The generator
  // guarantees at least outputs + registers POs; pick the last ones (they
  // are the sink nets, typically deepest).
  const auto& pos = core.primary_outputs();
  if (pos.size() < p.outputs + p.registers) {
    throw NetlistError("sequential_dag: core has too few outputs for the registers");
  }
  for (std::size_t r = 0; r < p.registers; ++r) {
    const NetId d = pos[pos.size() - 1 - r];
    const NetId q = core.primary_inputs()[p.inputs + r];
    nl.add_gate(GateType::Dff, {d}, q);
  }
  return nl;  // cyclic through the DFFs
}

}  // namespace udsim
