// Engine-agnostic resilient batch execution over the Simulator facade.
//
// run_batch_resilient() is the one entry point that composes the whole
// resilience stack (DESIGN.md §5f): pre-flight ProgramValidator, cooperative
// cancellation, checkpoint/resume, deterministic fault injection and shard
// retry-with-quarantine. For a compiled engine it validates the engine's
// program, then drives BatchRunner::run_resilient; for the interpreted event
// engines (no compiled program, state not captured in a word arena) it still
// honors cancellation but cannot produce a checkpoint — `resumable` is false
// and an early stop discards the partial rows.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>

#include "core/batch_runner.h"
#include "core/simulator.h"
#include "resilience/cancel.h"
#include "resilience/checkpoint.h"
#include "resilience/fault_injection.h"

namespace udsim {

/// Bounded retry-with-backoff schedule for *transient* failures (a native
/// toolchain hiccup, an injected shard fault that escaped quarantine, a
/// failed allocation). Complements the per-shard retry/quarantine machinery
/// in BatchRunner: that layer retries a shard from its seam within one run,
/// this one schedules whole-run re-attempts with growing pauses — the knob
/// the service layer (src/service/) turns.
struct RetryPolicy {
  unsigned max_retries = 1;  ///< re-attempts after the first try (0 = none)
  std::chrono::nanoseconds base_backoff{std::chrono::milliseconds(2)};
  double multiplier = 2.0;   ///< backoff growth per attempt
  std::chrono::nanoseconds max_backoff{std::chrono::milliseconds(250)};

  /// Pause before re-attempt `retry` (1-based): base × multiplier^(retry-1),
  /// clamped to max_backoff.
  [[nodiscard]] std::chrono::nanoseconds backoff_for(unsigned retry) const noexcept;
};

/// Sleep `d`, waking early when `cancel` stops (polled in small slices so a
/// deadline or cancel request never waits out a full backoff). Returns the
/// reason the sleep ended early, or StopReason::None after a full sleep.
StopReason backoff_sleep(std::chrono::nanoseconds d, const CancelToken* cancel);

/// Whether retrying a failed run can plausibly change the outcome — the
/// explicit classification RetryPolicy consumers key on (DESIGN.md §5k).
/// Deterministic failures (a compiler rejecting the emitted C, a program
/// failing validation, a geometry-mismatched resume) reproduce on every
/// attempt, so burning whole-run retries — and their backoff sleeps — on
/// them only delays the inevitable Failed.
enum class FaultClass : std::uint8_t {
  Transient,      ///< injected fault, allocation failure, toolchain timeout
  Deterministic,  ///< same inputs → same failure; retrying cannot help
};

[[nodiscard]] std::string_view fault_class_name(FaultClass c) noexcept;

/// Classify by dynamic exception type: InjectedFault, std::bad_alloc and a
/// timed-out NativeError (the compile-timeout kill) are Transient; every
/// other NativeError (the compiler's verdict is a function of the emitted
/// source), ProgramRejected, and anything unrecognized are Deterministic.
[[nodiscard]] FaultClass classify_fault(const std::exception& e) noexcept;

struct ResilientOptions {
  unsigned num_threads = 0;  ///< worker threads; 0 = all hardware threads
  const CancelToken* cancel = nullptr;
  FaultInjector* inject = nullptr;  ///< tests/bench only
  unsigned retry_limit = 2;         ///< shard retries before quarantine
  MetricsRegistry* metrics = nullptr;
  Diagnostics* diag = nullptr;
  /// Continue a previous early-stopped run; must match this run's geometry
  /// (program, vector count, thread count) or CheckpointError(Geometry).
  const BatchCheckpoint* resume = nullptr;
  /// Run ProgramValidator before the first pass; a rejected program throws
  /// ProgramRejected instead of executing.
  bool validate = true;
  /// Request-trace id threaded down into BatchOptions::trace_id (0 = none).
  std::uint64_t trace_id = 0;
};

struct ResilientResult {
  RunStatus status = RunStatus::Complete;
  BatchResult batch;  ///< rows beyond `vectors_done` are zero when stopped
  BatchCheckpoint checkpoint;      ///< populated when stopped and resumable
  bool resumable = false;          ///< compiled engines only
  std::uint64_t vectors_done = 0;
  std::uint64_t retries = 0;
  std::uint64_t quarantined = 0;
};

/// Batch-run `vectors` (row-major, one Bit per primary input per row)
/// through `sim` with the full resilience stack. Always replays from the
/// engine's reset state (plus `resume`, when given), like
/// Simulator::run_batch.
[[nodiscard]] ResilientResult run_batch_resilient(const Simulator& sim,
                                                  std::span<const Bit> vectors,
                                                  const ResilientOptions& opts = {});

}  // namespace udsim
