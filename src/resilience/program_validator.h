// Pre-flight validation of compiled programs, with structured diagnostics.
//
// `ir/verify.h` is the compiler test suites' string-returning checker; this
// is the production-facing pass the execution stack runs *before* a program
// touches an arena: the same structural checks (op bounds, arena and input
// index ranges, shift-immediate ranges, scratch-read-before-write) plus
// probe coverage and input coverage, each defect reported as a distinct
// DiagCode into a Diagnostics sink. A corrupted or ill-formed Program is
// therefore a structured rejection, never out-of-bounds execution. The
// fallback chain re-validates after every downgrade, and the resilient batch
// entry point validates before its first pass (DESIGN.md §5f).
#pragma once

#include <span>
#include <stdexcept>
#include <string>

#include "core/kernel_runner.h"
#include "ir/program.h"
#include "netlist/diagnostics.h"

namespace udsim {

struct ValidateOptions {
  /// Arena bits the caller intends to sample after each vector; validated
  /// against the arena bounds and the program word size.
  std::span<const ArenaProbe> probes{};
  /// Arena words legitimately live across vectors (see VerifyOptions); when
  /// non-empty, reading any other word before this program writes it is an
  /// error.
  std::span<const std::uint32_t> persistent{};
  /// Warn (ProgramInputUnused) when an input word is never loaded — usually
  /// a sign the program and the vector stream disagree about PI order.
  bool check_input_coverage = true;
};

/// Validate `p`, reporting every defect (Error severity) and coverage gap
/// (Warning) into `diag`; on acceptance a single ProgramAccepted note is
/// recorded. Returns true when no Error-severity record was added. Defect
/// reporting is capped at 16 records so a garbage program cannot flood the
/// sink.
bool validate_program(const Program& p, const ValidateOptions& opts,
                      Diagnostics& diag);

/// Convenience wrapper: the first defect as a one-line string, empty when
/// the program is accepted.
[[nodiscard]] std::string validate_program_brief(const Program& p,
                                                 const ValidateOptions& opts = {});

/// Thrown by execution layers handed a program that fails validation.
class ProgramRejected : public std::runtime_error {
 public:
  explicit ProgramRejected(std::string first_defect);
};

}  // namespace udsim
