#include "resilience/circuit_breaker.h"

namespace udsim {

std::string_view breaker_state_name(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::Closed:
      return "closed";
    case BreakerState::Open:
      return "open";
    case BreakerState::HalfOpen:
      return "half-open";
  }
  return "?";
}

void CircuitBreaker::bump(const char* what) const {
  metric_add(metrics_, "breaker." + cfg_.name + "." + what, 1);
}

void CircuitBreaker::open_locked(Clock::time_point now) {
  state_ = BreakerState::Open;
  probe_in_flight_ = false;
  retry_at_ = now + cfg_.cooldown;
  bump("opened");
}

bool CircuitBreaker::allow() {
  std::lock_guard lock(mu_);
  switch (state_) {
    case BreakerState::Closed:
      return true;
    case BreakerState::HalfOpen:
      // The probe slot is taken; everyone else keeps falling back until the
      // probe's record_success/record_failure decides.
      if (probe_in_flight_) {
        bump("short_circuited");
        return false;
      }
      probe_in_flight_ = true;
      bump("probes");
      return true;
    case BreakerState::Open: {
      const Clock::time_point now = Clock::now();
      if (now < retry_at_) {
        bump("short_circuited");
        return false;
      }
      state_ = BreakerState::HalfOpen;
      probe_in_flight_ = true;
      bump("probes");
      return true;
    }
  }
  return true;
}

void CircuitBreaker::record_success() {
  std::lock_guard lock(mu_);
  bump("successes");
  failures_ = 0;
  probe_in_flight_ = false;
  if (state_ != BreakerState::Closed) {
    state_ = BreakerState::Closed;
    bump("closed");
  }
}

void CircuitBreaker::record_failure() {
  std::lock_guard lock(mu_);
  bump("failures");
  ++failures_;
  const Clock::time_point now = Clock::now();
  if (state_ == BreakerState::HalfOpen) {
    // The probe failed: straight back to Open for another cooldown.
    open_locked(now);
    return;
  }
  if (state_ == BreakerState::Closed &&
      cfg_.failure_threshold != 0 && failures_ >= cfg_.failure_threshold) {
    open_locked(now);
  }
}

void CircuitBreaker::record_abandoned() {
  std::lock_guard lock(mu_);
  // A half-open breaker goes back to waiting for a probe; the next allow()
  // grants a fresh one. Closed/Open state and the failure count are
  // untouched — nothing was learned about the dependency.
  probe_in_flight_ = false;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard lock(mu_);
  return failures_;
}

std::chrono::nanoseconds CircuitBreaker::cooldown_remaining() const {
  std::lock_guard lock(mu_);
  if (state_ != BreakerState::Open) return std::chrono::nanoseconds{0};
  const Clock::time_point now = Clock::now();
  return now >= retry_at_ ? std::chrono::nanoseconds{0} : retry_at_ - now;
}

std::string CircuitBreaker::describe() const {
  std::lock_guard lock(mu_);
  std::string s{breaker_state_name(state_)};
  switch (state_) {
    case BreakerState::Closed:
      if (failures_ != 0) {
        s += " (" + std::to_string(failures_) + " consecutive failures of " +
             std::to_string(cfg_.failure_threshold) + " to trip)";
      }
      break;
    case BreakerState::Open: {
      const Clock::time_point now = Clock::now();
      const auto left = now >= retry_at_ ? std::chrono::nanoseconds{0}
                                         : retry_at_ - now;
      s += " (" + std::to_string(failures_) + " consecutive failures; probe in " +
           std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                              left)
                              .count()) +
           " ms)";
      break;
    }
    case BreakerState::HalfOpen:
      s += probe_in_flight_ ? " (probe in flight)" : " (awaiting probe)";
      break;
  }
  return s;
}

}  // namespace udsim
