// Versioned, checksummed snapshots of an interrupted batch run.
//
// A compiled unit-delay shard has exactly one piece of cross-vector state —
// the settled word arena — so a checkpoint is tiny and exact: per shard, the
// next unexecuted vector index, the arena words as of the last executed
// vector, and the output rows already produced. Resuming restores the arena
// and continues; the result is bit-identical to the uninterrupted run for
// any word size (DESIGN.md §5f; the property is enforced across every
// ISCAS-85 profile, engine, and thread count by tests/checkpoint_test.cpp).
//
// The wire format is little-endian with fixed-width fields, a magic/version
// header, and a trailing FNV-1a 64 checksum over everything before it.
// Loading a corrupted, truncated or version-skewed snapshot always raises a
// structured CheckpointError — never UB, never a partial object.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/logic.h"

namespace udsim {

/// Structured load/resume failure; `kind()` names the defect class.
class CheckpointError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    Truncated,          ///< stream ends before the declared payload
    BadMagic,           ///< not a checkpoint at all
    UnsupportedVersion, ///< produced by an incompatible format revision
    ChecksumMismatch,   ///< payload bytes do not match the trailing checksum
    Corrupt,            ///< internally inconsistent (overlapping shards, ...)
    Geometry,           ///< valid snapshot, but for a different run shape
  };

  CheckpointError(Kind kind, std::string message);
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

[[nodiscard]] std::string_view checkpoint_error_name(CheckpointError::Kind k) noexcept;

/// One shard's resumable progress. `arena` is the settled arena (uint64
/// carrier — word_bits/64 consecutive entries per arena word for the wide
/// lanes, truncated to the program word size at 32 bits) after vector
/// `next - 1`; it is empty when the shard never started (`next == begin`,
/// seam replay re-derives the state) or already finished (`next == end`).
struct ShardCheckpoint {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t next = 0;
  std::vector<std::uint64_t> arena;
  std::vector<Bit> rows;  ///< (next - begin) × probe_count completed outputs

  [[nodiscard]] bool done() const noexcept { return next == end; }
};

/// Whole-run snapshot: program/run geometry plus per-shard progress. A
/// snapshot only resumes a run with the same program shape, vector count and
/// shard boundaries (thread count × min_chunk); anything else is a
/// structured Geometry error, not a silent wrong answer.
struct BatchCheckpoint {
  static constexpr std::uint32_t kMagic = 0x4B434455u;  // "UDCK" little-endian
  static constexpr std::uint32_t kVersion = 1;

  std::uint32_t word_bits = 0;
  std::uint32_t arena_words = 0;
  std::uint32_t input_words = 0;
  std::uint32_t probe_count = 0;
  std::uint64_t num_vectors = 0;
  std::vector<ShardCheckpoint> shards;

  [[nodiscard]] bool complete() const noexcept;
  /// Total vectors whose outputs the snapshot already holds.
  [[nodiscard]] std::uint64_t vectors_done() const noexcept;
};

/// Serialize to the wire format (appends nothing after the checksum).
[[nodiscard]] std::string checkpoint_to_bytes(const BatchCheckpoint& ck);
/// Parse and fully validate; throws CheckpointError on any defect.
[[nodiscard]] BatchCheckpoint checkpoint_from_bytes(std::string_view bytes);

/// Stream variants (binary; the caller owns open/close and stream modes).
void save_checkpoint(std::ostream& out, const BatchCheckpoint& ck);
[[nodiscard]] BatchCheckpoint load_checkpoint(std::istream& in);

}  // namespace udsim
