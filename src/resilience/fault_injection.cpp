#include "resilience/fault_injection.h"

namespace udsim {

std::string_view fault_site_name(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::WorkerThrow:
      return "worker-throw";
    case FaultSite::ArenaCorrupt:
      return "arena-corrupt";
    case FaultSite::AllocFail:
      return "alloc-fail";
    case FaultSite::DeadlineOverrun:
      return "deadline-overrun";
  }
  return "?";
}

namespace {

std::string fault_message(FaultSite site, std::uint64_t shard,
                          std::uint64_t vector, unsigned attempt) {
  std::string m = "injected ";
  m += fault_site_name(site);
  m += " at shard " + std::to_string(shard) + ", vector " +
       std::to_string(vector) + ", attempt " + std::to_string(attempt);
  return m;
}

// splitmix64: full-avalanche 64-bit mixer; makes the (seed, site, shard,
// vector, attempt) -> fire decision uniform and order-free.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

InjectedFault::InjectedFault(FaultSite site, std::uint64_t shard,
                             std::uint64_t vector, unsigned attempt)
    : std::runtime_error(fault_message(site, shard, vector, attempt)),
      site_(site),
      shard_(shard),
      vector_(vector),
      attempt_(attempt) {}

bool FaultInjector::fires(FaultSite site, std::uint64_t shard,
                          std::uint64_t vector, unsigned attempt) const noexcept {
  for (const SiteSpec& s : sites_) {
    if (s.site == site && s.shard == shard && s.vector == vector &&
        s.attempt == attempt) {
      return true;
    }
  }
  const std::uint32_t rate = rate_[index(site)];
  if (rate == 0 || attempt > rate_max_attempt_[index(site)]) return false;
  const std::uint64_t h =
      mix(mix(mix(mix(seed_ ^ (static_cast<std::uint64_t>(site) + 1)) ^ shard) ^
              vector) ^
          attempt);
  return h % 10000 < rate;
}

std::uint64_t FaultInjector::fired_total() const noexcept {
  std::uint64_t n = 0;
  for (const auto& f : fired_) n += f.load(std::memory_order_relaxed);
  return n;
}

}  // namespace udsim
