#include "resilience/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <stdexcept>

namespace udsim {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds until `when`, clamped to [0, cap] for poll().
int ms_until(Clock::time_point when, int cap) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(when - Clock::now())
          .count();
  if (left <= 0) return 0;
  return left > cap ? cap : static_cast<int>(left);
}

void append_capped(SubprocessResult& r, const char* buf, std::size_t n,
                   std::size_t cap) {
  if (r.stderr_output.size() < cap) {
    const std::size_t room = cap - r.stderr_output.size();
    r.stderr_output.append(buf, n < room ? n : room);
    if (n > room) r.stderr_truncated = true;
  } else if (n > 0) {
    r.stderr_truncated = true;
  }
}

}  // namespace

std::string SubprocessResult::describe() const {
  if (!launched) {
    return "could not launch" + (error.empty() ? "" : ": " + error);
  }
  if (timed_out) {
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(duration).count();
    return "timed out after " + std::to_string(ms) + " ms";
  }
  if (term_signal != 0) {
    return "killed by signal " + std::to_string(term_signal);
  }
  return "exit code " + std::to_string(exit_code);
}

std::vector<std::string> split_command(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) out.push_back(std::move(cur)), cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

SubprocessResult run_subprocess(const std::vector<std::string>& argv,
                                const SubprocessOptions& opts) {
  if (argv.empty()) {
    throw std::invalid_argument("run_subprocess: empty argv");
  }
  SubprocessResult r;

  int errpipe[2];
  if (::pipe(errpipe) != 0) {
    r.error = std::string("pipe: ") + ::strerror(errno);
    return r;
  }

  const Clock::time_point start = Clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) {
    r.error = std::string("fork: ") + ::strerror(errno);
    ::close(errpipe[0]);
    ::close(errpipe[1]);
    return r;
  }

  if (pid == 0) {
    // Child. Own process group so the parent's timeout kill reaches every
    // descendant (a compiler driver forks cc1/as/ld).
    ::setpgid(0, 0);
    ::close(errpipe[0]);
    ::dup2(errpipe[1], STDERR_FILENO);
    if (errpipe[1] != STDERR_FILENO) ::close(errpipe[1]);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      if (devnull != STDOUT_FILENO) ::close(devnull);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    // Exec failed: report through the captured-stderr channel and use the
    // shell's conventional 127 so the parent sees a normal exit.
    const std::string msg =
        "exec '" + argv[0] + "' failed: " + ::strerror(errno) + "\n";
    (void)!::write(STDERR_FILENO, msg.data(), msg.size());
    ::_exit(127);
  }

  // Parent. Mirror the child's setpgid so the group exists whichever side
  // runs first (after exec the child-side call can no longer happen).
  ::setpgid(pid, pid);
  ::close(errpipe[1]);
  r.launched = true;

  const bool limited = opts.timeout.count() > 0;
  const Clock::time_point deadline = start + opts.timeout;
  Clock::time_point kill_at{};  // set when SIGTERM goes out
  bool term_sent = false;
  bool kill_sent = false;
  bool eof = false;
  bool reaped = false;
  int status = 0;
  char buf[4096];

  while (!reaped) {
    // Wake at the next escalation edge (or every 50 ms to re-poll waitpid).
    int wait_ms = 50;
    if (limited && !term_sent) {
      wait_ms = ms_until(deadline, wait_ms);
    } else if (term_sent && !kill_sent) {
      wait_ms = ms_until(kill_at, wait_ms);
    }

    if (!eof) {
      struct pollfd pfd{errpipe[0], POLLIN, 0};
      const int pr = ::poll(&pfd, 1, wait_ms);
      if (pr > 0) {
        const ssize_t n = ::read(errpipe[0], buf, sizeof(buf));
        if (n > 0) {
          append_capped(r, buf, static_cast<std::size_t>(n), opts.stderr_cap);
        } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
          eof = true;
        }
      }
    } else {
      struct timespec ts{0, wait_ms * 1000000L};
      ::nanosleep(&ts, nullptr);
    }

    const pid_t w = ::waitpid(pid, &status, WNOHANG);
    if (w == pid) {
      reaped = true;
      break;
    }
    if (w < 0 && errno != EINTR) {
      // Should not happen (no one else reaps our children); treat as gone.
      reaped = true;
      break;
    }

    const Clock::time_point now = Clock::now();
    if (limited && !term_sent && now >= deadline) {
      r.timed_out = true;
      term_sent = true;
      kill_at = now + opts.kill_grace;
      ::kill(-pid, SIGTERM);
      ::kill(pid, SIGTERM);
    }
    if (term_sent && !kill_sent && now >= kill_at) {
      kill_sent = true;
      ::kill(-pid, SIGKILL);
      ::kill(pid, SIGKILL);
    }
  }

  // Drain whatever stderr is still buffered in the pipe (the child is gone;
  // reads cannot block past the buffered bytes + EOF, but an orphaned
  // grandchild could in principle hold the write end open — poll with a
  // zero timeout so that never stalls us either).
  while (!eof) {
    struct pollfd pfd{errpipe[0], POLLIN, 0};
    if (::poll(&pfd, 1, 0) <= 0) break;
    const ssize_t n = ::read(errpipe[0], buf, sizeof(buf));
    if (n <= 0) break;
    append_capped(r, buf, static_cast<std::size_t>(n), opts.stderr_cap);
  }
  ::close(errpipe[0]);

  r.duration = std::chrono::duration_cast<std::chrono::nanoseconds>(
      Clock::now() - start);
  if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.term_signal = WTERMSIG(status);
  }
  return r;
}

}  // namespace udsim
