// Deterministic fault injection for the resilient batch layer.
//
// Whether a site fires is a pure function of (seed, site, shard, vector,
// attempt): the same injector configuration produces the same failure sites,
// the same retry counts and the same quarantine decisions on every
// execution — which is what makes the failure-handling tests assertions,
// not flake. Sites can be planted explicitly (exact shard/vector/attempt)
// or drawn from a seeded per-ten-thousand-passes rate; both compose.
//
// Four fault classes cover the failure modes DESIGN.md §5f enumerates:
//   WorkerThrow     — the shard body raises InjectedFault mid-stream
//   ArenaCorrupt    — a settled-arena word is flipped, then trapped (stands
//                     in for a detected memory fault; the shard retries
//                     from its seam and must still be bit-identical)
//   AllocFail       — std::bad_alloc at shard entry
//   DeadlineOverrun — the pass behaves as if the token's deadline expired,
//                     driving the checkpoint path without a real clock
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace udsim {

enum class FaultSite : std::uint8_t {
  WorkerThrow,
  ArenaCorrupt,
  AllocFail,
  DeadlineOverrun,
};
inline constexpr std::size_t kFaultSiteCount = 4;

[[nodiscard]] std::string_view fault_site_name(FaultSite s) noexcept;

/// The exception injected faults surface as (except AllocFail, which throws
/// std::bad_alloc, and DeadlineOverrun, which is not an exception at all).
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultSite site, std::uint64_t shard, std::uint64_t vector,
                unsigned attempt);

  [[nodiscard]] FaultSite site() const noexcept { return site_; }
  [[nodiscard]] std::uint64_t shard() const noexcept { return shard_; }
  [[nodiscard]] std::uint64_t vector() const noexcept { return vector_; }
  [[nodiscard]] unsigned attempt() const noexcept { return attempt_; }

 private:
  FaultSite site_;
  std::uint64_t shard_;
  std::uint64_t vector_;
  unsigned attempt_;
};

class FaultInjector {
 public:
  /// An explicit site: fires exactly when (site, shard, vector, attempt)
  /// all match.
  struct SiteSpec {
    FaultSite site = FaultSite::WorkerThrow;
    std::uint64_t shard = 0;
    std::uint64_t vector = 0;
    unsigned attempt = 0;
  };

  explicit FaultInjector(std::uint64_t seed) noexcept : seed_(seed) {}

  void add_site(SiteSpec s) { sites_.push_back(s); }

  /// Seeded random firing: `per_10k` chances in 10000 per pass, only on
  /// attempts <= `max_attempt` (so retries eventually run clean and the
  /// retry policy — not the injector — decides the outcome).
  void set_rate(FaultSite site, std::uint32_t per_10k, unsigned max_attempt = 0) {
    rate_[index(site)] = per_10k;
    rate_max_attempt_[index(site)] = max_attempt;
  }

  /// Pure decision function; record-free (use fire() on the hot path).
  [[nodiscard]] bool fires(FaultSite site, std::uint64_t shard,
                           std::uint64_t vector, unsigned attempt) const noexcept;

  /// fires() plus the per-site fired counter bump.
  [[nodiscard]] bool fire(FaultSite site, std::uint64_t shard,
                          std::uint64_t vector, unsigned attempt) noexcept {
    if (!fires(site, shard, vector, attempt)) return false;
    fired_[index(site)].fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Faults this injector has fired, by site (deterministic given the seed
  /// and an identical sequence of fire() queries).
  [[nodiscard]] std::uint64_t fired(FaultSite site) const noexcept {
    return fired_[index(site)].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fired_total() const noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  [[nodiscard]] static std::size_t index(FaultSite s) noexcept {
    return static_cast<std::size_t>(s);
  }

  std::uint64_t seed_;
  std::vector<SiteSpec> sites_;
  std::uint32_t rate_[kFaultSiteCount] = {0, 0, 0, 0};
  unsigned rate_max_attempt_[kFaultSiteCount] = {0, 0, 0, 0};
  std::atomic<std::uint64_t> fired_[kFaultSiteCount] = {};
};

}  // namespace udsim
