// Cooperative cancellation for long-running simulation work.
//
// A `CancelToken` is the one shared flag a controller flips to stop a run:
// the execution layers (KernelRunner, BatchRunner, the event engines, the
// guarded compilers) poll it once per vector pass / compile phase and stop
// at the next boundary — never mid-pass, so the settled arena is always a
// consistent prefix of the uninterrupted run and checkpointing stays free.
// Polling follows the observability layer's overhead policy (DESIGN.md §5e,
// §5f): one relaxed atomic load and one predictable branch per pass when a
// token is attached, exactly one dead branch when none is. Deadlines ride on
// the same token; the clock is only read every `CancelPoll::kClockStride`
// polls so a deadline costs no per-pass clock read.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace udsim {

/// Why an execution stopped early.
enum class StopReason : std::uint8_t {
  None,      ///< still running / ran to completion
  Cancelled, ///< CancelToken::request_cancel()
  Deadline,  ///< the token's deadline passed (or an injected overrun)
};

[[nodiscard]] std::string_view stop_reason_name(StopReason r) noexcept;

/// Sticky cancellation flag plus an optional monotonic deadline. The token
/// must outlive every run polling it; one token may be shared by any number
/// of concurrent shards/engines (all reads are relaxed atomics).
class CancelToken {
 public:
  /// Request cancellation. Sticky: there is no un-cancel.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Stop the run `budget` from now (steady clock). A zero/negative budget
  /// expires immediately; call clear_deadline() to remove.
  void set_deadline_after(std::chrono::nanoseconds budget) noexcept {
    deadline_ns_.store(now_ns() + budget.count(), std::memory_order_relaxed);
  }
  void clear_deadline() noexcept {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }
  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }
  /// Reads the clock; prefer CancelPoll on hot paths.
  [[nodiscard]] bool deadline_expired() const noexcept {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != kNoDeadline && now_ns() >= d;
  }

  /// The reason a poll would stop right now (clock read when a deadline is
  /// set) — for cold paths like compile-phase boundaries.
  [[nodiscard]] StopReason stop_reason() const noexcept {
    if (cancel_requested()) return StopReason::Cancelled;
    if (deadline_expired()) return StopReason::Deadline;
    return StopReason::None;
  }

 private:
  static constexpr std::int64_t kNoDeadline = INT64_MAX;
  [[nodiscard]] static std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

/// Per-run polling helper: amortizes the deadline's clock read over
/// kClockStride passes while the cancel flag itself is checked every pass.
/// With a null token poll() is a single predictable branch.
class CancelPoll {
 public:
  static constexpr unsigned kClockStride = 64;

  explicit CancelPoll(const CancelToken* token) noexcept : token_(token) {}

  [[nodiscard]] StopReason poll() noexcept {
    if (token_ == nullptr) return StopReason::None;
    if (token_->cancel_requested()) return StopReason::Cancelled;
    if (token_->has_deadline() && ++since_clock_ >= kClockStride) {
      since_clock_ = 0;
      if (token_->deadline_expired()) return StopReason::Deadline;
    }
    return StopReason::None;
  }

  /// Forces the next poll() to read the clock (used right before waits).
  void force_clock_check() noexcept { since_clock_ = kClockStride; }

  [[nodiscard]] const CancelToken* token() const noexcept { return token_; }

 private:
  const CancelToken* token_;
  unsigned since_clock_ = 0;
};

/// Thrown by layers whose API has no structured-result channel (KernelRunner
/// runs, event-engine steps, the guarded compilers). The batch layer never
/// throws this from its resilient entry point — it returns a structured
/// ResilientBatch with a checkpoint instead.
class Cancelled : public std::runtime_error {
 public:
  Cancelled(StopReason reason, std::string site, std::uint64_t vector_index = 0);

  [[nodiscard]] StopReason reason() const noexcept { return reason_; }
  /// Where the run stopped ("kernel.run", "compile.levelize", ...).
  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  /// Vector index the stop preceded (0 when not vector-indexed).
  [[nodiscard]] std::uint64_t vector_index() const noexcept { return vector_; }

 private:
  StopReason reason_;
  std::string site_;
  std::uint64_t vector_;
};

}  // namespace udsim
