#include "resilience/program_validator.h"

#include <vector>

namespace udsim {

namespace {

struct OpShape {
  bool reads_a_arena;   ///< a is an arena index (vs an input index)
  bool reads_b;
  bool reads_dst;       ///< dst is read-modify-write
  bool uses_imm_shift;  ///< imm must be a shift amount
  bool imm_nonzero;     ///< funnel shifts exclude 0
  bool loads_input;     ///< a is an input-word index
};

OpShape shape_of(OpCode c) {
  switch (c) {
    case OpCode::Const:
      return {false, false, false, false, false, false};
    case OpCode::Copy:
    case OpCode::Not:
      return {true, false, false, false, false, false};
    case OpCode::And:
    case OpCode::Or:
    case OpCode::Xor:
    case OpCode::Nand:
    case OpCode::Nor:
    case OpCode::Xnor:
      return {true, true, false, false, false, false};
    case OpCode::AccAnd:
    case OpCode::AccOr:
    case OpCode::AccXor:
      return {true, false, true, false, false, false};
    case OpCode::MaskedCopy:
      return {true, true, true, false, false, false};
    case OpCode::LoadBit:
    case OpCode::LoadBcast:
    case OpCode::LoadWord:
      return {false, false, false, false, false, true};
    case OpCode::ExtractBit:
    case OpCode::BcastBit:
    case OpCode::Shl:
    case OpCode::Shr:
      return {true, false, false, true, false, false};
    case OpCode::ShlOr:
    case OpCode::MaskShlOr:
      return {true, false, true, true, false, false};
    case OpCode::FunnelL:
    case OpCode::FunnelR:
      return {true, true, false, true, true, false};
  }
  return {};
}

constexpr std::size_t kMaxDefectRecords = 16;

class Report {
 public:
  explicit Report(Diagnostics& diag) : diag_(diag) {}

  void defect(DiagCode code, std::string subject, std::string message) {
    ++errors_;
    if (errors_ <= kMaxDefectRecords) {
      diag_.report(code, DiagSeverity::Error, std::move(subject),
                   std::move(message));
    }
  }
  void warn(DiagCode code, std::string subject, std::string message) {
    diag_.report(code, DiagSeverity::Warning, std::move(subject),
                 std::move(message));
  }

  [[nodiscard]] std::size_t errors() const noexcept { return errors_; }

 private:
  Diagnostics& diag_;
  std::size_t errors_ = 0;
};

std::string at_op(std::size_t i) { return "op " + std::to_string(i); }

}  // namespace

bool validate_program(const Program& p, const ValidateOptions& opts,
                      Diagnostics& diag) {
  Report rep(diag);
  const auto W = static_cast<unsigned>(p.word_bits);
  if (W != 32 && W != 64 && W != 128 && W != 256) {
    rep.defect(DiagCode::ProgramWordSize, "program",
               "word_bits is " + std::to_string(p.word_bits) +
                   "; the executors support 32, 64, 128 and 256");
    // Everything below still runs: bounds are word-size independent, and a
    // corrupted header should not mask a corrupted body.
  }

  // The known-opcode range: a corrupted `code` byte indexes the threaded
  // dispatch table out of bounds, so it must be rejected up front.
  constexpr auto kLastOp = static_cast<std::uint8_t>(OpCode::FunnelR);

  std::vector<bool> written(p.arena_words, false);
  for (std::size_t i = 0; i < p.arena_init.size(); ++i) {
    const Program::InitWord& iw = p.arena_init[i];
    if (iw.index >= p.arena_words) {
      rep.defect(DiagCode::ProgramInitBounds, "arena_init[" + std::to_string(i) + "]",
                 "init index " + std::to_string(iw.index) +
                     " outside the arena (" + std::to_string(p.arena_words) +
                     " words)");
      continue;
    }
    written[iw.index] = true;
  }
  for (const std::uint32_t persistent : opts.persistent) {
    if (persistent < p.arena_words) written[persistent] = true;
  }
  const bool track_scratch = !opts.persistent.empty();

  std::vector<bool> input_loaded(p.input_words, false);
  for (std::size_t i = 0; i < p.ops.size(); ++i) {
    const Op& op = p.ops[i];
    if (static_cast<std::uint8_t>(op.code) > kLastOp) {
      rep.defect(DiagCode::ProgramOpBounds, at_op(i),
                 "unknown opcode " +
                     std::to_string(static_cast<unsigned>(op.code)));
      continue;  // the shape of an unknown op is meaningless
    }
    const OpShape s = shape_of(op.code);
    if (op.dst >= p.arena_words) {
      rep.defect(DiagCode::ProgramOpBounds, at_op(i),
                 "dst word " + std::to_string(op.dst) + " outside the arena (" +
                     std::to_string(p.arena_words) + " words)");
    }
    if (s.loads_input) {
      if (op.a >= p.input_words) {
        rep.defect(DiagCode::ProgramInputBounds, at_op(i),
                   "input word " + std::to_string(op.a) +
                       " outside the input span (" +
                       std::to_string(p.input_words) + " words)");
      } else {
        input_loaded[op.a] = true;
      }
    } else if (s.reads_a_arena) {
      if (op.a >= p.arena_words) {
        rep.defect(DiagCode::ProgramOpBounds, at_op(i),
                   "operand a word " + std::to_string(op.a) +
                       " outside the arena");
      } else if (track_scratch && !written[op.a]) {
        rep.defect(DiagCode::ProgramScratchRead, at_op(i),
                   "reads scratch word " + std::to_string(op.a) +
                       " before any write");
      }
    }
    if (s.reads_b) {
      if (op.b >= p.arena_words) {
        rep.defect(DiagCode::ProgramOpBounds, at_op(i),
                   "operand b word " + std::to_string(op.b) +
                       " outside the arena");
      } else if (track_scratch && !written[op.b]) {
        rep.defect(DiagCode::ProgramScratchRead, at_op(i),
                   "reads scratch word " + std::to_string(op.b) +
                       " before any write");
      }
    }
    if (s.reads_dst && op.dst < p.arena_words && track_scratch &&
        !written[op.dst]) {
      rep.defect(DiagCode::ProgramScratchRead, at_op(i),
                 "read-modify-write of unwritten scratch word " +
                     std::to_string(op.dst));
    }
    if (s.uses_imm_shift) {
      if (W != 0 && op.imm >= W) {
        rep.defect(DiagCode::ProgramShiftRange, at_op(i),
                   "shift immediate " + std::to_string(op.imm) +
                       " out of range for " + std::to_string(W) + "-bit words");
      }
      if (s.imm_nonzero && op.imm == 0) {
        rep.defect(DiagCode::ProgramShiftRange, at_op(i),
                   "funnel shift immediate must be non-zero");
      }
    }
    if (op.dst < p.arena_words) written[op.dst] = true;
  }

  for (std::size_t i = 0; i < opts.probes.size(); ++i) {
    const ArenaProbe& pr = opts.probes[i];
    if (pr.word >= p.arena_words || pr.bit >= W) {
      rep.defect(DiagCode::ProgramProbeBounds, "probe " + std::to_string(i),
                 "samples word " + std::to_string(pr.word) + " bit " +
                     std::to_string(static_cast<unsigned>(pr.bit)) +
                     ", outside a " + std::to_string(p.arena_words) +
                     "-word, " + std::to_string(W) + "-bit arena");
    }
  }

  if (opts.check_input_coverage && rep.errors() == 0) {
    std::size_t unused = 0;
    for (std::size_t i = 0; i < input_loaded.size(); ++i) {
      if (!input_loaded[i]) ++unused;
    }
    if (unused > 0) {
      rep.warn(DiagCode::ProgramInputUnused, "program",
               std::to_string(unused) + " of " + std::to_string(p.input_words) +
                   " input words are never loaded");
    }
  }

  if (rep.errors() == 0) {
    diag.report(DiagCode::ProgramAccepted, DiagSeverity::Note, "program",
                std::to_string(p.ops.size()) + " ops over " +
                    std::to_string(p.arena_words) + " arena words accepted");
    return true;
  }
  return false;
}

std::string validate_program_brief(const Program& p, const ValidateOptions& opts) {
  Diagnostics diag;
  if (validate_program(p, opts, diag)) return {};
  for (const Diagnostic& d : diag.records()) {
    if (d.severity == DiagSeverity::Error) return d.to_string();
  }
  return "program rejected";
}

ProgramRejected::ProgramRejected(std::string first_defect)
    : std::runtime_error("program failed validation: " + std::move(first_defect)) {}

}  // namespace udsim
