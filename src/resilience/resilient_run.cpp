#include "resilience/resilient_run.h"

#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ir/program.h"
#include "native/native_backend.h"
#include "netlist/diagnostics.h"
#include "resilience/program_validator.h"

namespace udsim {

namespace {

std::size_t vector_count_of(const Netlist& nl, std::span<const Bit> vectors) {
  const std::size_t pis = nl.primary_inputs().size();
  if (pis == 0) {
    if (!vectors.empty()) {
      throw std::invalid_argument(
          "run_batch_resilient: vector stream given but the netlist has no "
          "primary inputs");
    }
    return 0;
  }
  if (vectors.size() % pis != 0) {
    throw std::invalid_argument(
        "run_batch_resilient: stream size " + std::to_string(vectors.size()) +
        " is not a multiple of the primary-input count " + std::to_string(pis));
  }
  return vectors.size() / pis;
}

}  // namespace

std::chrono::nanoseconds RetryPolicy::backoff_for(unsigned retry) const noexcept {
  if (retry == 0) return std::chrono::nanoseconds{0};
  double ns = static_cast<double>(base_backoff.count());
  for (unsigned i = 1; i < retry; ++i) ns *= multiplier;
  const double cap = static_cast<double>(max_backoff.count());
  if (ns > cap) ns = cap;
  return std::chrono::nanoseconds{static_cast<std::int64_t>(ns)};
}

std::string_view fault_class_name(FaultClass c) noexcept {
  switch (c) {
    case FaultClass::Transient:
      return "transient";
    case FaultClass::Deterministic:
      return "deterministic";
  }
  return "?";
}

FaultClass classify_fault(const std::exception& e) noexcept {
  if (dynamic_cast<const InjectedFault*>(&e) != nullptr) {
    return FaultClass::Transient;
  }
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
    return FaultClass::Transient;
  }
  if (const auto* ne = dynamic_cast<const NativeError*>(&e)) {
    // The one toolchain failure a retry can cure is the timeout kill (a
    // loaded machine, a cold NFS cache); a compiler *verdict* on the same
    // emitted source reproduces every time.
    return ne->timed_out() ? FaultClass::Transient : FaultClass::Deterministic;
  }
  // ProgramRejected, geometry-mismatched resumes, logic errors, and
  // anything unrecognized: same inputs, same failure.
  return FaultClass::Deterministic;
}

StopReason backoff_sleep(std::chrono::nanoseconds d, const CancelToken* cancel) {
  using clock = std::chrono::steady_clock;
  const auto until = clock::now() + d;
  constexpr auto kSlice = std::chrono::milliseconds(1);
  for (;;) {
    if (cancel != nullptr) {
      const StopReason r = cancel->stop_reason();
      if (r != StopReason::None) return r;
    }
    const auto now = clock::now();
    if (now >= until) return StopReason::None;
    const auto left = until - now;
    std::this_thread::sleep_for(left < kSlice ? left : kSlice);
  }
}

ResilientResult run_batch_resilient(const Simulator& sim,
                                    std::span<const Bit> vectors,
                                    const ResilientOptions& opts) {
  const Netlist& nl = sim.netlist();
  const std::size_t count = vector_count_of(nl, vectors);
  ResilientResult r;
  r.batch.outputs = nl.primary_outputs();
  r.batch.vectors = count;

  const Program* program = sim.compiled_program();
  if (program == nullptr) {
    // Interpreted engine: cancellation still works (the engine polls between
    // vectors), but there is no word arena to snapshot, so an early stop
    // cannot checkpoint — partial rows are discarded. The token and registry
    // ride in as per-run overrides so a shared const engine needs no
    // set_cancel/set_metrics mutation (service layer contract).
    try {
      r.batch = sim.run_batch(vectors, BatchRunOptions{
                                           .num_threads = opts.num_threads,
                                           .cancel = opts.cancel,
                                           .metrics = opts.metrics,
                                       });
      r.vectors_done = count;
    } catch (const Cancelled& e) {
      r.status = e.reason() == StopReason::Deadline ? RunStatus::DeadlineExpired
                                                    : RunStatus::Cancelled;
      r.batch.values.clear();
      r.vectors_done = e.vector_index() > 0 ? e.vector_index() - 1 : 0;
      if (opts.diag) {
        opts.diag->report(DiagCode::RunCancelled, DiagSeverity::Note,
                          "run_batch_resilient",
                          std::string(stop_reason_name(e.reason())) +
                              " in interpreted engine; no checkpoint (not "
                              "resumable)");
      }
    }
    return r;
  }

  std::vector<ArenaProbe> probes = sim.output_probes();
  if (opts.validate) {
    const ValidateOptions vopts{.probes = probes};
    Diagnostics local;
    Diagnostics& vdiag = opts.diag ? *opts.diag : local;
    if (!validate_program(*program, vopts, vdiag)) {
      throw ProgramRejected(validate_program_brief(*program, vopts));
    }
  }

  const std::size_t pis = nl.primary_inputs().size();
  if (program->input_words != pis) {
    throw std::logic_error(
        "run_batch_resilient: program is not in scalar input mode");
  }
  std::vector<std::uint64_t> in(count * pis);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = vectors[i] & 1;

  BatchRunner runner(*program, std::move(probes),
                     BatchOptions{.num_threads = opts.num_threads,
                                  .metrics = opts.metrics,
                                  .cancel = opts.cancel,
                                  .inject = opts.inject,
                                  .retry_limit = opts.retry_limit,
                                  .diag = opts.diag,
                                  .trace_id = opts.trace_id});
  ResilientBatch b = runner.run_resilient(in, count, opts.resume);
  r.status = b.status;
  r.batch.values = std::move(b.values);
  r.batch.threads = runner.num_threads();
  r.checkpoint = std::move(b.checkpoint);
  r.resumable = true;
  r.vectors_done = b.vectors_done;
  r.retries = b.retries;
  r.quarantined = b.quarantined;
  return r;
}

}  // namespace udsim
