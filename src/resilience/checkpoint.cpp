#include "resilience/checkpoint.h"

#include <algorithm>
#include <istream>
#include <iterator>
#include <ostream>

namespace udsim {

namespace {

// FNV-1a 64: tiny, dependency-free, and plenty for detecting the accidental
// corruption this guards against (it is not a cryptographic seal).
std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint32_t u32(const char* what) { return static_cast<std::uint32_t>(raw(4, what)); }
  std::uint64_t u64(const char* what) { return raw(8, what); }
  std::uint8_t u8(const char* what) { return static_cast<std::uint8_t>(raw(1, what)); }

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

  void need(std::uint64_t n, const char* what) const {
    if (n > remaining()) {
      throw CheckpointError(CheckpointError::Kind::Truncated,
                            std::string("checkpoint truncated reading ") + what);
    }
  }

 private:
  std::uint64_t raw(std::size_t n, const char* what) {
    need(n, what);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    return v;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

[[noreturn]] void corrupt(const std::string& message) {
  throw CheckpointError(CheckpointError::Kind::Corrupt, "checkpoint " + message);
}

}  // namespace

CheckpointError::CheckpointError(Kind kind, std::string message)
    : std::runtime_error(std::move(message)), kind_(kind) {}

std::string_view checkpoint_error_name(CheckpointError::Kind k) noexcept {
  switch (k) {
    case CheckpointError::Kind::Truncated:
      return "truncated";
    case CheckpointError::Kind::BadMagic:
      return "bad-magic";
    case CheckpointError::Kind::UnsupportedVersion:
      return "unsupported-version";
    case CheckpointError::Kind::ChecksumMismatch:
      return "checksum-mismatch";
    case CheckpointError::Kind::Corrupt:
      return "corrupt";
    case CheckpointError::Kind::Geometry:
      return "geometry";
  }
  return "?";
}

bool BatchCheckpoint::complete() const noexcept {
  for (const ShardCheckpoint& s : shards) {
    if (!s.done()) return false;
  }
  return true;
}

std::uint64_t BatchCheckpoint::vectors_done() const noexcept {
  std::uint64_t n = 0;
  for (const ShardCheckpoint& s : shards) n += s.next - s.begin;
  return n;
}

std::string checkpoint_to_bytes(const BatchCheckpoint& ck) {
  std::string out;
  put_u32(out, BatchCheckpoint::kMagic);
  put_u32(out, BatchCheckpoint::kVersion);
  put_u32(out, ck.word_bits);
  put_u32(out, ck.arena_words);
  put_u32(out, ck.input_words);
  put_u32(out, ck.probe_count);
  put_u64(out, ck.num_vectors);
  put_u32(out, static_cast<std::uint32_t>(ck.shards.size()));
  for (const ShardCheckpoint& s : ck.shards) {
    put_u64(out, s.begin);
    put_u64(out, s.end);
    put_u64(out, s.next);
    out.push_back(s.arena.empty() ? '\0' : '\1');
    if (!s.arena.empty()) {
      for (const std::uint64_t w : s.arena) put_u64(out, w);
    }
    for (const Bit b : s.rows) out.push_back(static_cast<char>(b & 1));
  }
  put_u64(out, fnv1a64(out));
  return out;
}

BatchCheckpoint checkpoint_from_bytes(std::string_view bytes) {
  // The checksum seals everything before it; verify it first so every later
  // parse error is a *structural* finding about intact bytes.
  if (bytes.size() < 8) {
    throw CheckpointError(CheckpointError::Kind::Truncated,
                          "checkpoint shorter than its checksum");
  }
  Reader trailer(bytes.substr(bytes.size() - 8));
  const std::uint64_t declared = trailer.u64("checksum");
  const std::string_view payload = bytes.substr(0, bytes.size() - 8);

  Reader r(payload);
  const std::uint32_t magic = r.u32("magic");
  if (magic != BatchCheckpoint::kMagic) {
    throw CheckpointError(CheckpointError::Kind::BadMagic,
                          "not a udsim checkpoint (bad magic)");
  }
  const std::uint32_t version = r.u32("version");
  if (version != BatchCheckpoint::kVersion) {
    throw CheckpointError(
        CheckpointError::Kind::UnsupportedVersion,
        "checkpoint format version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(BatchCheckpoint::kVersion) + ")");
  }
  if (fnv1a64(payload) != declared) {
    throw CheckpointError(CheckpointError::Kind::ChecksumMismatch,
                          "checkpoint checksum mismatch");
  }

  BatchCheckpoint ck;
  ck.word_bits = r.u32("word_bits");
  ck.arena_words = r.u32("arena_words");
  ck.input_words = r.u32("input_words");
  ck.probe_count = r.u32("probe_count");
  ck.num_vectors = r.u64("num_vectors");
  if (ck.word_bits != 32 && ck.word_bits != 64 && ck.word_bits != 128 &&
      ck.word_bits != 256) {
    corrupt("declares word size " + std::to_string(ck.word_bits));
  }
  // Wide words span word_bits/64 uint64 carrier entries each (DESIGN.md §5j).
  const std::uint64_t carrier_words =
      std::uint64_t{ck.arena_words} *
      (ck.word_bits > 64 ? ck.word_bits / 64 : 1);
  const std::uint32_t shard_count = r.u32("shard_count");
  ck.shards.reserve(std::min<std::uint64_t>(shard_count, r.remaining() / 25));
  std::uint64_t expect_begin = 0;
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    ShardCheckpoint s;
    s.begin = r.u64("shard begin");
    s.end = r.u64("shard end");
    s.next = r.u64("shard next");
    if (s.begin != expect_begin || s.end < s.begin || s.end > ck.num_vectors) {
      corrupt("shard " + std::to_string(i) + " bounds are inconsistent");
    }
    if (s.next < s.begin || s.next > s.end) {
      corrupt("shard " + std::to_string(i) + " progress outside its bounds");
    }
    expect_begin = s.end;
    if (r.u8("arena flag") != 0) {
      r.need(carrier_words * 8, "shard arena");
      s.arena.resize(carrier_words);
      for (std::uint64_t w = 0; w < carrier_words; ++w) {
        s.arena[w] = r.u64("arena word");
      }
    } else if (s.next != s.begin && s.next != s.end) {
      corrupt("shard " + std::to_string(i) +
              " is mid-stream but carries no arena");
    }
    const std::uint64_t row_bits = (s.next - s.begin) * ck.probe_count;
    r.need(row_bits, "shard rows");
    s.rows.resize(row_bits);
    for (std::uint64_t b = 0; b < row_bits; ++b) {
      const std::uint8_t bit = r.u8("row bit");
      if (bit > 1) corrupt("row bit is not 0/1");
      s.rows[b] = static_cast<Bit>(bit);
    }
    ck.shards.push_back(std::move(s));
  }
  if (expect_begin != ck.num_vectors) {
    corrupt("shards do not cover the vector range");
  }
  if (r.remaining() != 0) {
    corrupt("has " + std::to_string(r.remaining()) + " trailing payload bytes");
  }
  return ck;
}

void save_checkpoint(std::ostream& out, const BatchCheckpoint& ck) {
  const std::string bytes = checkpoint_to_bytes(ck);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

BatchCheckpoint load_checkpoint(std::istream& in) {
  std::string bytes(std::istreambuf_iterator<char>(in), {});
  return checkpoint_from_bytes(bytes);
}

}  // namespace udsim
