// Generic circuit breaker for unreliable dependencies (DESIGN.md §5k).
//
// The classic closed → open → half-open trip-wire: consecutive failures of
// a protected operation (here: the external toolchain behind the native
// backend) open the breaker, an open breaker short-circuits callers to the
// fallback path at zero cost instead of re-paying the failure per request,
// and after a cooldown exactly one probe call is let through — success
// re-closes the breaker, failure re-opens it for another cooldown. All
// transitions are mutex-protected cold-path work (the breaker guards an
// external compiler invocation, not a per-vector loop) and every transition
// is visible as a `breaker.<name>.*` counter.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace udsim {

enum class BreakerState : std::uint8_t {
  Closed,   ///< normal operation; failures are being counted
  Open,     ///< tripping threshold reached; calls short-circuit to fallback
  HalfOpen, ///< cooldown elapsed; one probe in flight decides the next state
};

[[nodiscard]] std::string_view breaker_state_name(BreakerState s) noexcept;

struct CircuitBreakerConfig {
  /// Names the breaker in counters (`breaker.<name>.*`), diagnostics and
  /// the service health report.
  std::string name = "breaker";
  /// Consecutive failures that trip Closed → Open.
  unsigned failure_threshold = 3;
  /// Open-state dwell before a half-open probe is allowed through.
  std::chrono::nanoseconds cooldown{std::chrono::seconds(10)};
};

/// Thread-safe; one breaker is shared by every worker that touches the
/// protected dependency. Counters (when `metrics` is non-null):
/// breaker.<name>.{opened,closed,short_circuited,probes,failures,successes}.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig cfg = {},
                          MetricsRegistry* metrics = nullptr)
      : cfg_(std::move(cfg)), metrics_(metrics) {}

  /// Permission to attempt the protected operation. Closed: always granted.
  /// Open: denied until the cooldown elapses, then exactly one caller is
  /// granted the half-open probe (everyone else stays denied until the
  /// probe reports). The caller MUST follow a granted attempt with
  /// record_success() or record_failure().
  [[nodiscard]] bool allow();

  /// A granted attempt succeeded: reset the failure count; a half-open
  /// probe success re-closes the breaker.
  void record_success();

  /// A granted attempt failed: count it; at `failure_threshold` consecutive
  /// failures (or on a failed half-open probe) the breaker opens.
  void record_failure();

  /// A granted attempt ended without a verdict on the dependency (e.g. a
  /// compile budget rejected the program before the toolchain ran, or the
  /// request was cancelled mid-build): releases a held half-open probe slot
  /// without counting success or failure, so the breaker can never be
  /// wedged by an abandoned probe.
  void record_abandoned();

  [[nodiscard]] BreakerState state() const;
  [[nodiscard]] std::uint64_t consecutive_failures() const;
  /// Time until an open breaker admits its probe; zero unless Open.
  [[nodiscard]] std::chrono::nanoseconds cooldown_remaining() const;
  [[nodiscard]] const CircuitBreakerConfig& config() const noexcept {
    return cfg_;
  }

  /// One-line status for diagnostics/health: e.g.
  /// "open (3 consecutive failures; probe in 8123 ms)".
  [[nodiscard]] std::string describe() const;

 private:
  using Clock = std::chrono::steady_clock;

  void bump(const char* what) const;
  void open_locked(Clock::time_point now);

  const CircuitBreakerConfig cfg_;
  MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::Closed;
  std::uint64_t failures_ = 0;      ///< consecutive, reset on success
  bool probe_in_flight_ = false;    ///< half-open: the one granted attempt
  Clock::time_point retry_at_{};    ///< open: when the probe unlocks
};

}  // namespace udsim
