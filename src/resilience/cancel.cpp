#include "resilience/cancel.h"

namespace udsim {

std::string_view stop_reason_name(StopReason r) noexcept {
  switch (r) {
    case StopReason::None:
      return "none";
    case StopReason::Cancelled:
      return "cancelled";
    case StopReason::Deadline:
      return "deadline";
  }
  return "?";
}

namespace {

std::string cancelled_message(StopReason reason, const std::string& site,
                              std::uint64_t vector_index) {
  std::string m(stop_reason_name(reason));
  m += " at ";
  m += site;
  if (vector_index != 0) {
    m += " (vector ";
    m += std::to_string(vector_index);
    m += ")";
  }
  return m;
}

}  // namespace

Cancelled::Cancelled(StopReason reason, std::string site, std::uint64_t vector_index)
    : std::runtime_error(cancelled_message(reason, site, vector_index)),
      reason_(reason),
      site_(std::move(site)),
      vector_(vector_index) {}

}  // namespace udsim
