// Sandboxed external-command execution for the toolchain boundary
// (DESIGN.md §5k).
//
// The native backend's external C compiler is the library's one dependency
// that can hang, die, or babble arbitrary bytes, and `std::system` gave it
// a shell, no deadline, and a single captured stderr line. run_subprocess()
// replaces that with an argv-based fork/exec (no shell — arguments are
// passed verbatim, metacharacters are data), full stderr capture through a
// pipe with a byte cap, and a wall-clock timeout enforced by SIGTERM
// escalating to SIGKILL on the child's whole process group — so a wedged
// compiler driver *and* its spawned cc1/ld children die together and can
// never park a service worker. Every ending is a structured
// SubprocessResult; nothing about the child's behavior surfaces as a hang
// or an exception.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace udsim {

struct SubprocessOptions {
  /// Wall-clock limit from exec to exit; 0 = unlimited. On expiry the
  /// child's process group gets SIGTERM, then SIGKILL `kill_grace` later —
  /// a compiler driver that ignores SIGTERM still dies.
  std::chrono::nanoseconds timeout{0};
  /// Pause between the SIGTERM and the SIGKILL escalation.
  std::chrono::nanoseconds kill_grace{std::chrono::milliseconds(100)};
  /// Captured-stderr byte cap. The pipe is always drained (a chatty child
  /// never blocks on a full pipe); bytes beyond the cap are discarded and
  /// `stderr_truncated` is set.
  std::size_t stderr_cap = 64 * 1024;
};

/// Everything one child-process run can end as. Exactly one of the exit /
/// signal / timed-out / not-launched shapes holds; describe() renders it.
struct SubprocessResult {
  bool launched = false;     ///< fork+pipe succeeded (exec failure = exit 127)
  bool timed_out = false;    ///< killed by the timeout escalation
  int exit_code = -1;        ///< valid when the child exited normally
  int term_signal = 0;       ///< non-zero when a signal killed the child
  std::string stderr_output; ///< captured stderr, truncated to the cap
  bool stderr_truncated = false;
  std::chrono::nanoseconds duration{0};  ///< exec-to-reap wall clock
  std::string error;         ///< launch-failure detail when !launched

  /// Clean success: launched, not timed out, exited with status 0.
  [[nodiscard]] bool ok() const noexcept {
    return launched && !timed_out && term_signal == 0 && exit_code == 0;
  }
  /// One-phrase cause: "exit code 1", "killed by signal 9",
  /// "timed out after 200 ms", "could not launch: ...".
  [[nodiscard]] std::string describe() const;
};

/// Run `argv` (argv[0] resolved through PATH) with stdout discarded and
/// stderr captured. Never throws on child misbehavior — only on an empty
/// argv (std::invalid_argument). The child runs in its own process group;
/// timeout enforcement kills the whole group.
[[nodiscard]] SubprocessResult run_subprocess(
    const std::vector<std::string>& argv, const SubprocessOptions& opts = {});

/// Split a flag string on whitespace — the no-shell replacement for the
/// word-splitting `std::system` used to do to UDSIM_CC_FLAGS. Quoting is
/// not interpreted: each whitespace-separated token is one argument.
[[nodiscard]] std::vector<std::string> split_command(std::string_view s);

}  // namespace udsim
