#include "lcc/lcc3.h"

#include "analysis/levelize.h"

namespace udsim {

namespace {

/// Emits the dual-rail ops for one gate.
class DualRailEmitter {
 public:
  DualRailEmitter(Program& p, const Lcc3Compiled& c, std::uint32_t scratch_base)
      : p_(p), c_(c), scratch_(scratch_base) {}

  void emit(const Netlist& nl, GateId gid) {
    const Gate& g = nl.gate(gid);
    const std::uint32_t oh = c_.net_h[g.output.value];
    const std::uint32_t ol = c_.net_l[g.output.value];
    switch (g.type) {
      case GateType::Const0:
      case GateType::Const1:
        return;  // arena-init handles constants
      case GateType::Buf:
      case GateType::Dff:
        op(OpCode::Copy, oh, h(g.inputs[0]));
        op(OpCode::Copy, ol, l(g.inputs[0]));
        return;
      case GateType::Not:
        op(OpCode::Copy, oh, l(g.inputs[0]));
        op(OpCode::Copy, ol, h(g.inputs[0]));
        return;
      case GateType::And:
      case GateType::WiredAnd:
      case GateType::Nand:
        reduce(g, oh, ol, OpCode::And, OpCode::AccAnd, OpCode::Or, OpCode::AccOr,
               g.type == GateType::Nand);
        return;
      case GateType::Or:
      case GateType::WiredOr:
      case GateType::Nor:
        reduce(g, oh, ol, OpCode::Or, OpCode::AccOr, OpCode::And, OpCode::AccAnd,
               g.type == GateType::Nor);
        return;
      case GateType::Xor:
      case GateType::Xnor:
        xor_reduce(g, oh, ol, g.type == GateType::Xnor);
        return;
    }
  }

 private:
  void op(OpCode code, std::uint32_t dst, std::uint32_t a = 0, std::uint32_t b = 0) {
    p_.ops.push_back({code, 0, dst, a, b});
  }
  [[nodiscard]] std::uint32_t h(NetId n) const { return c_.net_h[n.value]; }
  [[nodiscard]] std::uint32_t l(NetId n) const { return c_.net_l[n.value]; }

  /// AND/OR family: one rail reduces with `pair/acc`, the other with the
  /// dual ops; inverted types swap the destination rails.
  void reduce(const Gate& g, std::uint32_t oh, std::uint32_t ol, OpCode pair,
              OpCode acc, OpCode dual_pair, OpCode dual_acc, bool invert) {
    const std::uint32_t dh = invert ? ol : oh;
    const std::uint32_t dl = invert ? oh : ol;
    if (g.inputs.size() == 1) {
      op(OpCode::Copy, dh, h(g.inputs[0]));
      op(OpCode::Copy, dl, l(g.inputs[0]));
      return;
    }
    op(pair, dh, h(g.inputs[0]), h(g.inputs[1]));
    op(dual_pair, dl, l(g.inputs[0]), l(g.inputs[1]));
    for (std::size_t i = 2; i < g.inputs.size(); ++i) {
      op(acc, dh, h(g.inputs[i]));
      op(dual_acc, dl, l(g.inputs[i]));
    }
  }

  /// XOR family: fold pairwise through two scratch rails.
  void xor_reduce(const Gate& g, std::uint32_t oh, std::uint32_t ol, bool invert) {
    std::uint32_t ah = h(g.inputs[0]);
    std::uint32_t al = l(g.inputs[0]);
    const std::uint32_t u1 = scratch_;
    const std::uint32_t u2 = scratch_ + 1;
    const std::uint32_t u3 = scratch_ + 2;
    const std::uint32_t u4 = scratch_ + 3;
    const std::uint32_t acc_h = scratch_ + 4;
    const std::uint32_t acc_l = scratch_ + 5;
    for (std::size_t i = 1; i < g.inputs.size(); ++i) {
      const std::uint32_t bh = h(g.inputs[i]);
      const std::uint32_t bl = l(g.inputs[i]);
      // next_h = ah&bl | al&bh ; next_l = ah&bh | al&bl — all four products
      // read the *old* rails, so they precede both accumulator writes.
      op(OpCode::And, u1, ah, bl);
      op(OpCode::And, u2, al, bh);
      op(OpCode::And, u3, ah, bh);
      op(OpCode::And, u4, al, bl);
      op(OpCode::Or, acc_h, u1, u2);
      op(OpCode::Or, acc_l, u3, u4);
      ah = acc_h;
      al = acc_l;
    }
    op(OpCode::Copy, invert ? ol : oh, ah);
    op(OpCode::Copy, invert ? oh : ol, al);
  }

  Program& p_;
  const Lcc3Compiled& c_;
  std::uint32_t scratch_;
};

}  // namespace

Lcc3Compiled compile_lcc3(const Netlist& nl, bool packed, int word_bits) {
  nl.validate();
  for (const Net& n : nl.nets()) {
    if (n.drivers.size() > 1) {
      throw NetlistError("compile_lcc3 requires lowered wired nets");
    }
  }
  Lcc3Compiled out;
  out.packed = packed;
  Program& p = out.program;
  p.word_bits = word_bits;
  out.net_h.resize(nl.net_count());
  out.net_l.resize(nl.net_count());
  p.names.resize(2 * nl.net_count());
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    out.net_h[n] = 2 * n;
    out.net_l[n] = 2 * n + 1;
    p.names[2 * n] = nl.net(NetId{n}).name + ".h";
    p.names[2 * n + 1] = nl.net(NetId{n}).name + ".l";
  }
  const auto scratch_base = static_cast<std::uint32_t>(2 * nl.net_count());
  p.arena_words = scratch_base + 6;
  p.input_words = static_cast<std::uint32_t>(2 * nl.primary_inputs().size());

  for (const Gate& g : nl.gates()) {
    if (g.type == GateType::Const0) {
      p.arena_init.push_back({out.net_h[g.output.value], 0});
      p.arena_init.push_back({out.net_l[g.output.value], ~std::uint64_t{0}});
    } else if (g.type == GateType::Const1) {
      p.arena_init.push_back({out.net_h[g.output.value], ~std::uint64_t{0}});
      p.arena_init.push_back({out.net_l[g.output.value], 0});
    }
  }
  for (std::uint32_t i = 0; i < nl.primary_inputs().size(); ++i) {
    const NetId pi = nl.primary_inputs()[i];
    const OpCode load = packed ? OpCode::LoadWord : OpCode::LoadBit;
    p.ops.push_back({load, 0, out.net_h[pi.value], 2 * i, 0});
    p.ops.push_back({load, 0, out.net_l[pi.value], 2 * i + 1, 0});
  }
  DualRailEmitter emitter(p, out, scratch_base);
  for (GateId gid : topological_gate_order(nl)) {
    emitter.emit(nl, gid);
  }
  return out;
}

XInitResult x_initialization(const BrokenCircuit& bc,
                             std::span<const Tri> external_inputs, int max_cycles) {
  const std::size_t n_ext = bc.comb.primary_inputs().size() - bc.regs.size();
  if (external_inputs.size() != n_ext) {
    throw NetlistError("x_initialization: wrong external input count");
  }
  Lcc3Sim<> sim(bc.comb);
  XInitResult result;
  result.state.assign(bc.regs.size(), Tri::X);
  std::vector<Tri> v(bc.comb.primary_inputs().size());
  for (int cycle = 1; cycle <= max_cycles; ++cycle) {
    for (std::size_t i = 0; i < n_ext; ++i) v[i] = external_inputs[i];
    for (std::size_t r = 0; r < bc.regs.size(); ++r) v[n_ext + r] = result.state[r];
    sim.step(v);
    std::vector<Tri> next(bc.regs.size());
    for (std::size_t r = 0; r < bc.regs.size(); ++r) {
      next[r] = sim.value(bc.regs[r].d);
    }
    result.cycles = cycle;
    const bool fixed = next == result.state;
    result.state = std::move(next);
    if (fixed) break;
  }
  for (std::size_t r = 0; r < bc.regs.size(); ++r) {
    if (result.state[r] == Tri::X) result.unresolved.push_back(r);
  }
  result.fully_initialized = result.unresolved.empty();
  return result;
}

}  // namespace udsim
