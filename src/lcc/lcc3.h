// Compiled three-valued (0/1/X) zero-delay simulation via dual-rail
// encoding: every net carries two words, h = "may be 1", l = "may be 0"
// (0 = (0,1), 1 = (1,0), X = (1,1)). Logic stays bit-parallel:
//   AND: h = a.h & b.h,                 l = a.l | b.l
//   OR : h = a.h | b.h,                 l = a.l & b.l
//   NOT: h = in.l,                      l = in.h
//   XOR: h = a.h&b.l | a.l&b.h,         l = a.h&b.h | a.l&b.l
// so one packed pass runs 32/64 independent three-valued vectors. The main
// application is X-propagation / initialization analysis: which outputs (or
// register inputs of a broken sequential core) stay unknown.
#pragma once

#include <span>
#include <vector>

#include "core/kernel_runner.h"
#include "gen/sequential.h"
#include "netlist/netlist.h"

namespace udsim {

struct Lcc3Compiled {
  Program program;
  std::vector<std::uint32_t> net_h;  ///< arena word: may-be-one rail
  std::vector<std::uint32_t> net_l;  ///< arena word: may-be-zero rail
  bool packed = false;
};

/// Generate the dual-rail zero-delay program. Inputs are two words per
/// primary input (h rail then l rail, in primary-input order).
[[nodiscard]] Lcc3Compiled compile_lcc3(const Netlist& nl, bool packed = false,
                                        int word_bits = 32);

/// Scalar runtime wrapper.
template <class Word = std::uint32_t>
class Lcc3Sim {
 public:
  explicit Lcc3Sim(const Netlist& nl)
      : nl_(nl), compiled_(compile_lcc3(nl, false, static_cast<int>(sizeof(Word) * 8))),
        runner_(compiled_.program) {}

  Lcc3Sim(const Lcc3Sim&) = delete;
  Lcc3Sim& operator=(const Lcc3Sim&) = delete;

  void step(std::span<const Tri> pi_values) {
    in_.assign(2 * nl_.primary_inputs().size(), 0);
    for (std::size_t i = 0; i < pi_values.size(); ++i) {
      in_[2 * i] = pi_values[i] != Tri::Zero ? Word{1} : Word{0};     // h
      in_[2 * i + 1] = pi_values[i] != Tri::One ? Word{1} : Word{0};  // l
    }
    runner_.run(in_);
  }

  [[nodiscard]] Tri value(NetId n) const {
    const bool h = runner_.bit(compiled_.net_h[n.value], 0);
    const bool l = runner_.bit(compiled_.net_l[n.value], 0);
    if (h && l) return Tri::X;
    return h ? Tri::One : Tri::Zero;
  }
  [[nodiscard]] const Lcc3Compiled& compiled() const noexcept { return compiled_; }

 private:
  const Netlist& nl_;
  Lcc3Compiled compiled_;
  KernelRunner<Word> runner_;
  std::vector<Word> in_;
};

struct XInitResult {
  int cycles = 0;              ///< clock cycles simulated
  bool fully_initialized = false;
  std::vector<Tri> state;      ///< final register values (regs order)
  std::vector<std::size_t> unresolved;  ///< indices of registers still X
};

/// Initialization (reset) analysis of a broken sequential core: start every
/// register at X, clock with the given external input values (commonly a
/// reset pattern), and iterate until the register state reaches a fixed
/// point or `max_cycles` passes.
[[nodiscard]] XInitResult x_initialization(const BrokenCircuit& bc,
                                           std::span<const Tri> external_inputs,
                                           int max_cycles = 64);

}  // namespace udsim
