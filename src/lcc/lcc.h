// Zero-delay Levelized Compiled Code simulation (paper §1, Fig. 1).
//
// One variable per net, one straight-line gate evaluation per gate in
// levelized order, final values only. Supports packed mode: with one lane
// per word bit, 32/64 independent input vectors are simulated per pass.
#pragma once

#include <span>
#include <vector>

#include "analysis/compile_budget.h"
#include "core/kernel_runner.h"
#include "netlist/netlist.h"

namespace udsim {

struct LccCompiled {
  Program program;
  std::vector<std::uint32_t> net_var;  ///< arena word of each net's value
  /// Per net: one past the index of the op that finishes computing its
  /// variable (0 when the value comes from arena_init, i.e. constants).
  /// Fault simulation splices forcing ops at these points.
  std::vector<std::uint32_t> def_end;
  bool packed = false;
};

/// Generate the zero-delay LCC program. `packed` selects whole-word input
/// loads (one lane per bit) instead of single-bit loads.
[[nodiscard]] LccCompiled compile_lcc(const Netlist& nl, bool packed = false,
                                      int word_bits = 32);

/// Guarded variant: throws BudgetExceeded when the predicted or emitted
/// cost crosses `guard.budget`; records compile diagnostics into
/// `guard.diag` when set.
[[nodiscard]] LccCompiled compile_lcc(const Netlist& nl, bool packed,
                                      int word_bits, const CompileGuard& guard);

/// Convenience runtime wrapper (scalar mode).
template <class Word = std::uint32_t>
class LccSim {
 public:
  explicit LccSim(const Netlist& nl)
      : nl_(nl), compiled_(compile_lcc(nl, false, static_cast<int>(sizeof(Word) * 8))),
        runner_(compiled_.program) {}

  LccSim(const Netlist& nl, const CompileGuard& guard)
      : nl_(nl),
        compiled_(compile_lcc(nl, false, static_cast<int>(sizeof(Word) * 8), guard)),
        runner_(compiled_.program) {}

  // runner_ references compiled_.program; relocation would dangle.
  LccSim(const LccSim&) = delete;
  LccSim& operator=(const LccSim&) = delete;

  void step(std::span<const Bit> pi_values) {
    in_.assign(nl_.primary_inputs().size(), 0);
    for (std::size_t i = 0; i < in_.size(); ++i) in_[i] = pi_values[i] & 1;
    runner_.run(in_);
  }

  [[nodiscard]] Bit value(NetId n) const {
    return runner_.bit(compiled_.net_var[n.value], 0);
  }
  /// Arena location of the net's settled value (batch-layer probe).
  [[nodiscard]] ArenaProbe final_arena_probe(NetId n) const {
    return {compiled_.net_var[n.value], 0};
  }
  [[nodiscard]] const Program& program() const noexcept { return compiled_.program; }
  [[nodiscard]] const LccCompiled& compiled() const noexcept { return compiled_; }

  /// Attach runtime execution counters (obs/pass_cost.h).
  void set_metrics(MetricsRegistry* reg) { runner_.set_metrics(reg); }
  /// Cooperative stop between vectors (see KernelRunner::set_cancel).
  void set_cancel(const CancelToken* token) noexcept { runner_.set_cancel(token); }

 private:
  const Netlist& nl_;
  LccCompiled compiled_;
  KernelRunner<Word> runner_;
  std::vector<Word> in_;
};

}  // namespace udsim
