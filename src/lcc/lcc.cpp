#include "lcc/lcc.h"

#include "analysis/levelize.h"
#include "ir/emit_util.h"
#include "obs/metrics.h"

namespace udsim {

LccCompiled compile_lcc(const Netlist& nl, bool packed, int word_bits) {
  return compile_lcc(nl, packed, word_bits, CompileGuard{});
}

LccCompiled compile_lcc(const Netlist& nl, bool packed, int word_bits,
                        const CompileGuard& guard) {
  nl.validate();
  if (!guard.budget.unlimited()) {
    guard.enforce(estimate_compile_cost(nl, EngineKind::ZeroDelayLcc, word_bits),
                  /*predicted=*/true);
  }
  MetricsRegistry* const reg = guard.metrics;
  TraceSpan total_span(reg, "compile.total");
  LccCompiled out;
  out.packed = packed;
  Program& p = out.program;
  p.word_bits = word_bits;

  out.net_var.resize(nl.net_count());
  p.names.resize(nl.net_count());
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    out.net_var[n] = n;
    p.names[n] = nl.net(NetId{n}).name;
  }
  p.arena_words = static_cast<std::uint32_t>(nl.net_count());
  p.input_words = static_cast<std::uint32_t>(nl.primary_inputs().size());

  // Constant nets: fixed arena words, no per-vector code.
  for (const Gate& g : nl.gates()) {
    if (g.type == GateType::Const0) p.arena_init.push_back({out.net_var[g.output.value], 0});
    if (g.type == GateType::Const1) {
      p.arena_init.push_back({out.net_var[g.output.value], ~std::uint64_t{0}});
    }
  }

  const std::vector<GateId> order = [&] {
    guard.check_cancel("compile.levelize");
    TraceSpan span(reg, "compile.levelize");
    return topological_gate_order(nl);
  }();
  {
    guard.check_cancel("compile.emit");
    TraceSpan span(reg, "compile.emit");
    out.def_end.assign(nl.net_count(), 0);
    for (std::uint32_t i = 0; i < nl.primary_inputs().size(); ++i) {
      const NetId pi = nl.primary_inputs()[i];
      p.ops.push_back({packed ? OpCode::LoadWord : OpCode::LoadBit, 0,
                       out.net_var[pi.value], i, 0});
      out.def_end[pi.value] = static_cast<std::uint32_t>(p.ops.size());
    }
    std::vector<std::uint32_t> operands;
    for (GateId gid : order) {
      const Gate& g = nl.gate(gid);
      if (is_constant(g.type)) continue;
      operands.clear();
      for (NetId in : g.inputs) operands.push_back(out.net_var[in.value]);
      emit_gate_word(p.ops, g.type, out.net_var[g.output.value], operands);
      out.def_end[g.output.value] = static_cast<std::uint32_t>(p.ops.size());
    }
  }
  if (reg) {
    reg->counter("compile.programs").add(1);
    reg->counter("compile.ops").add(p.ops.size());
    reg->counter("compile.arena_words").add(p.arena_words);
    reg->counter("compile.arena_init_words").add(p.arena_init.size());
    reg->counter("compile.input_words").add(p.input_words);
  }
  if (!guard.budget.unlimited()) {
    guard.enforce(measure_compile_cost(p, EngineKind::ZeroDelayLcc, nl.net_count()),
                  /*predicted=*/false);
  }
  return out;
}

}  // namespace udsim
