// Combinational equivalence checking between two netlists, matching ports
// by name: exhaustive for small input counts, packed-random otherwise.
// Used to validate netlist transforms and regenerated circuits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace udsim {

struct EquivalenceOptions {
  /// Exhaustive when the common input count is at most this; otherwise
  /// `random_vectors` packed-random vectors are used (so the result is a
  /// strong randomized check, not a proof).
  unsigned exhaustive_limit = 16;
  std::size_t random_vectors = 4096;
  std::uint64_t seed = 1;
};

struct Counterexample {
  std::vector<Bit> inputs;      ///< in `a`'s primary-input order
  std::string output;           ///< name of the differing output
  Bit value_a = 0;
  Bit value_b = 0;
};

struct EquivalenceResult {
  bool equivalent = false;
  bool exhaustive = false;      ///< true: a proof; false: randomized only
  std::size_t vectors_checked = 0;
  std::optional<Counterexample> counterexample;
  std::string error;            ///< non-empty when the interfaces mismatch
};

/// Compare the settled (zero-delay) behaviour of every same-named primary
/// output, driving same-named primary inputs identically. Fails with
/// `error` set if the input/output name sets differ.
[[nodiscard]] EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                                  const EquivalenceOptions& opts = {});

}  // namespace udsim
