// Multi-threaded batch execution of compiled simulation programs.
//
// A compiled unit-delay simulation has exactly one piece of cross-vector
// state: the settled (final) value of every net, retained in the word arena
// from one executor pass to the next. Those settled values are a pure
// function of the *current* input vector (the circuits are acyclic), so a
// vector stream can be sharded: a worker that first replays the vector
// immediately preceding its shard — discarding the outputs — reconstructs
// the exact retained state the sequential run would have carried into the
// shard, and every subsequent pass is bit-identical to sequential replay.
// That one discarded pass is the entire synchronization cost; shards never
// communicate while running.
//
// Determinism guarantee: run() returns the same bits for every thread
// count, equal to a sequential KernelRunner replay from the reset arena
// (enforced by tests/batch_runner_test.cpp).
//
// Resilience (DESIGN.md §5f): the same one-piece-of-state property makes
// shards independently retryable and the run checkpointable. run_resilient()
// polls a CancelToken once per vector pass and, instead of tearing the run
// down, returns a structured ResilientBatch whose BatchCheckpoint resumes
// bit-identically; a shard whose body throws is retried from its seam up to
// `retry_limit` times and then quarantined — replayed sequentially on the
// calling thread after the pool drains. Every retry/quarantine/cancel event
// is counted under resil.* and reported through Diagnostics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <string>
#include <utility>

#include "core/kernel_runner.h"
#include "core/thread_pool.h"
#include "ir/program.h"
#include "netlist/logic.h"
#include "obs/pass_cost.h"
#include "resilience/cancel.h"
#include "resilience/checkpoint.h"
#include "resilience/fault_injection.h"

namespace udsim {

class Diagnostics;

struct BatchOptions {
  unsigned num_threads = 0;    ///< worker threads; 0 = all hardware threads
  std::size_t min_chunk = 16;  ///< smallest shard worth a seam-replay pass
  /// Optional observability sink (DESIGN.md §5e). Payload passes bump the
  /// exact execution counters (sim.vectors, exec.*) — identical for every
  /// thread count; the sharding cost itself is recorded separately
  /// (batch.seam_vectors / batch.seam_ops, per-shard batch.shard.* timings)
  /// so the payload counters stay a cross-thread-count invariant.
  MetricsRegistry* metrics = nullptr;
  /// Engine-specific per-pass constants added per payload pass (see
  /// ExecCounters::attach extras).
  std::vector<std::pair<std::string, std::uint64_t>> extra_pass_cost;
  /// Cooperative stop: polled once per vector pass (one relaxed load + one
  /// branch; one dead branch when null). run() raises Cancelled; the
  /// resilient entry point returns a checkpoint instead.
  const CancelToken* cancel = nullptr;
  /// Deterministic fault-injection harness (tests/bench only).
  FaultInjector* inject = nullptr;
  /// Shard attempts after the first before the shard is quarantined.
  unsigned retry_limit = 2;
  /// Retry / quarantine / cancel events as structured records.
  Diagnostics* diag = nullptr;
  /// Request-trace id of the service request this batch serves (0 = none).
  /// Shards run on pool threads, which cannot see the submitter's
  /// thread-local RequestTraceScope — this is the explicitly-threaded hop:
  /// each shard re-enters the scope so its batch.shard span (and anything
  /// beneath it) carries the "request" arg in the trace export.
  std::uint64_t trace_id = 0;
};

/// How a resilient run ended.
enum class RunStatus : std::uint8_t {
  Complete,        ///< every vector executed
  Cancelled,       ///< stopped by CancelToken::request_cancel
  DeadlineExpired, ///< stopped by the token's deadline (or injected overrun)
};

[[nodiscard]] std::string_view run_status_name(RunStatus s) noexcept;

/// Structured result of BatchRunner::run_resilient. When status is not
/// Complete, `values` holds valid rows exactly for the vectors recorded in
/// `checkpoint` (other rows are zero) and `checkpoint` resumes the run
/// bit-identically under the same geometry (program, vector count, thread
/// count, min_chunk).
struct ResilientBatch {
  RunStatus status = RunStatus::Complete;
  std::vector<Bit> values;
  BatchCheckpoint checkpoint;      ///< populated when status != Complete
  std::uint64_t vectors_done = 0;  ///< rows of `values` that are final
  std::uint64_t retries = 0;       ///< shard attempts beyond the first
  std::uint64_t quarantined = 0;   ///< shards degraded to sequential replay
};

/// Runs a vector stream through one compiled `Program` on a worker pool:
/// one private KernelRunner arena per shard, seam replay at shard
/// boundaries, outputs merged in submission order. Works over any program
/// the compiled engines produce (LCC, PC-set, parallel and its optimized
/// variants) at any dispatched word size (32/64/128/256 bits; wide arenas
/// checkpoint as word_bits/64 uint64 carrier lanes per word).
class BatchRunner {
 public:
  /// `probes` are the arena bits to sample after every vector (one output
  /// column per probe); `program` must outlive the runner.
  BatchRunner(const Program& program, std::vector<ArenaProbe> probes,
              BatchOptions options = {});

  /// Run `num_vectors` vectors. `inputs` is row-major with
  /// `program.input_words` words per vector (uint64 carrier, truncated to
  /// the program's word size). Returns a row-major Bit matrix of
  /// `num_vectors` rows × `probes().size()` columns, in submission order.
  /// With a cancel token attached, an early stop raises Cancelled (the
  /// partial work is discarded; state is never torn). `num_vectors == 0`
  /// short-circuits to an empty result: no seam replay, no pool dispatch,
  /// no metrics traffic.
  [[nodiscard]] std::vector<Bit> run(std::span<const std::uint64_t> inputs,
                                     std::size_t num_vectors);

  /// run() with structured stop handling: cancellation/deadline returns a
  /// RunStatus plus a resumable checkpoint instead of throwing, failed
  /// shards are retried and quarantined per BatchOptions, and `resume`
  /// (optional) continues a previous snapshot — the combined run is
  /// bit-identical to an uninterrupted one. Throws CheckpointError
  /// (Kind::Geometry) when `resume` does not match this runner's geometry,
  /// and rethrows a shard's error only after its sequential quarantine
  /// replay also failed.
  [[nodiscard]] ResilientBatch run_resilient(
      std::span<const std::uint64_t> inputs, std::size_t num_vectors,
      const BatchCheckpoint* resume = nullptr);

  [[nodiscard]] unsigned num_threads() const noexcept { return pool_.threads(); }
  [[nodiscard]] const std::vector<ArenaProbe>& probes() const noexcept {
    return probes_;
  }

  /// Shards a run of `num_vectors` would be split into: one per thread,
  /// but never below `min_chunk` vectors each (a seam replay must stay
  /// amortized) and never more than the vector count.
  [[nodiscard]] std::size_t shard_count(std::size_t num_vectors) const noexcept;

 private:
  /// Mutable per-shard execution state (internal; becomes a ShardCheckpoint
  /// when a run stops early).
  struct ShardSlot {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t next = 0;             ///< first unexecuted vector
    std::vector<std::uint64_t> arena; ///< settled arena when mid-stream
    StopReason stop = StopReason::None;
    std::uint64_t retries = 0;
    bool quarantined = false;
  };

  template <class Word>
  void run_shard(std::span<const std::uint64_t> inputs, std::size_t shard_index,
                 ShardSlot& slot, std::span<Bit> out, unsigned attempt);
  void run_shard_any(std::span<const std::uint64_t> inputs,
                     std::size_t shard_index, ShardSlot& slot,
                     std::span<Bit> out, unsigned attempt);
  /// Retry loop around run_shard; sets slot.quarantined instead of throwing.
  void run_shard_guarded(std::span<const std::uint64_t> inputs,
                         std::size_t shard_index, ShardSlot& slot,
                         std::span<Bit> out);

  const Program& program_;
  std::vector<ArenaProbe> probes_;
  BatchOptions options_;
  ThreadPool pool_;
  ExecCounters exec_;  ///< payload-pass counters (disengaged without metrics)
};

}  // namespace udsim
