// Multi-threaded batch execution of compiled simulation programs.
//
// A compiled unit-delay simulation has exactly one piece of cross-vector
// state: the settled (final) value of every net, retained in the word arena
// from one executor pass to the next. Those settled values are a pure
// function of the *current* input vector (the circuits are acyclic), so a
// vector stream can be sharded: a worker that first replays the vector
// immediately preceding its shard — discarding the outputs — reconstructs
// the exact retained state the sequential run would have carried into the
// shard, and every subsequent pass is bit-identical to sequential replay.
// That one discarded pass is the entire synchronization cost; shards never
// communicate while running.
//
// Determinism guarantee: run() returns the same bits for every thread
// count, equal to a sequential KernelRunner replay from the reset arena
// (enforced by tests/batch_runner_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <string>
#include <utility>

#include "core/kernel_runner.h"
#include "core/thread_pool.h"
#include "ir/program.h"
#include "netlist/logic.h"
#include "obs/pass_cost.h"

namespace udsim {

struct BatchOptions {
  unsigned num_threads = 0;    ///< worker threads; 0 = all hardware threads
  std::size_t min_chunk = 16;  ///< smallest shard worth a seam-replay pass
  /// Optional observability sink (DESIGN.md §5e). Payload passes bump the
  /// exact execution counters (sim.vectors, exec.*) — identical for every
  /// thread count; the sharding cost itself is recorded separately
  /// (batch.seam_vectors / batch.seam_ops, per-shard batch.shard.* timings)
  /// so the payload counters stay a cross-thread-count invariant.
  MetricsRegistry* metrics = nullptr;
  /// Engine-specific per-pass constants added per payload pass (see
  /// ExecCounters::attach extras).
  std::vector<std::pair<std::string, std::uint64_t>> extra_pass_cost;
};

/// Runs a vector stream through one compiled `Program` on a worker pool:
/// one private KernelRunner arena per shard, seam replay at shard
/// boundaries, outputs merged in submission order. Works over any program
/// the compiled engines produce (LCC, PC-set, parallel and its optimized
/// variants) at either word size.
class BatchRunner {
 public:
  /// `probes` are the arena bits to sample after every vector (one output
  /// column per probe); `program` must outlive the runner.
  BatchRunner(const Program& program, std::vector<ArenaProbe> probes,
              BatchOptions options = {});

  /// Run `num_vectors` vectors. `inputs` is row-major with
  /// `program.input_words` words per vector (uint64 carrier, truncated to
  /// the program's word size). Returns a row-major Bit matrix of
  /// `num_vectors` rows × `probes().size()` columns, in submission order.
  [[nodiscard]] std::vector<Bit> run(std::span<const std::uint64_t> inputs,
                                     std::size_t num_vectors);

  [[nodiscard]] unsigned num_threads() const noexcept { return pool_.threads(); }
  [[nodiscard]] const std::vector<ArenaProbe>& probes() const noexcept {
    return probes_;
  }

  /// Shards a run of `num_vectors` would be split into: one per thread,
  /// but never below `min_chunk` vectors each (a seam replay must stay
  /// amortized) and never more than the vector count.
  [[nodiscard]] std::size_t shard_count(std::size_t num_vectors) const noexcept;

 private:
  template <class Word>
  void run_shard(std::span<const std::uint64_t> inputs, std::size_t begin,
                 std::size_t end, std::span<Bit> out) const;

  const Program& program_;
  std::vector<ArenaProbe> probes_;
  BatchOptions options_;
  ThreadPool pool_;
  ExecCounters exec_;  ///< payload-pass counters (disengaged without metrics)
};

}  // namespace udsim
