#include "core/batch_runner.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace udsim {

namespace {

[[nodiscard]] std::uint64_t shard_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

BatchRunner::BatchRunner(const Program& program, std::vector<ArenaProbe> probes,
                         BatchOptions options)
    : program_(program),
      probes_(std::move(probes)),
      options_(options),
      pool_(options.num_threads) {
  if (program_.word_bits != 32 && program_.word_bits != 64) {
    throw std::invalid_argument("BatchRunner: unsupported program word size");
  }
  for (const ArenaProbe& p : probes_) {
    if (p.word >= program_.arena_words ||
        p.bit >= static_cast<std::uint8_t>(program_.word_bits)) {
      throw std::invalid_argument("BatchRunner: probe outside the arena");
    }
  }
  if (options_.min_chunk == 0) options_.min_chunk = 1;
  exec_ = ExecCounters::attach(options_.metrics, program_, options_.extra_pass_cost);
}

std::size_t BatchRunner::shard_count(std::size_t num_vectors) const noexcept {
  if (num_vectors == 0) return 0;
  const std::size_t by_threads = pool_.threads();
  const std::size_t by_chunk =
      (num_vectors + options_.min_chunk - 1) / options_.min_chunk;
  return std::max<std::size_t>(1, std::min(by_threads, by_chunk));
}

template <class Word>
void BatchRunner::run_shard(std::span<const std::uint64_t> inputs,
                            std::size_t begin, std::size_t end,
                            std::span<Bit> out) const {
  const std::size_t iw = program_.input_words;
  MetricsRegistry* const reg = options_.metrics;
  const std::uint64_t t0 = reg ? shard_now_ns() : 0;
  KernelRunner<Word> runner(program_);
  std::vector<Word> row(iw);
  const auto load = [&](std::size_t v) {
    const std::uint64_t* src = inputs.data() + v * iw;
    for (std::size_t i = 0; i < iw; ++i) row[i] = static_cast<Word>(src[i]);
  };
  if (begin > 0) {
    // Seam replay: the predecessor shard's final vector re-establishes the
    // retained state (previous-vector settled values); outputs discarded.
    load(begin - 1);
    runner.run(row);
  }
  const std::size_t cols = probes_.size();
  for (std::size_t v = begin; v < end; ++v) {
    load(v);
    runner.run(row);
    Bit* dst = out.data() + v * cols;
    for (std::size_t j = 0; j < cols; ++j) {
      dst[j] = runner.bit(probes_[j].word, probes_[j].bit);
    }
  }
  if (reg) {
    // Payload counters (thread-count invariant): one bulk add per shard.
    exec_.on_passes(end - begin);
    // Sharding cost, attributed separately so the invariant holds.
    if (begin > 0) {
      reg->counter("batch.seam_vectors").add(1);
      reg->counter("batch.seam_ops").add(exec_.cost.ops);
    }
    const std::uint64_t elapsed = shard_now_ns() - t0;
    reg->counter("batch.shards").add(1);
    reg->counter("batch.shard.ns").add(elapsed);
    reg->counter("batch.shard_max.ns").set_max(elapsed);
    reg->counter("batch.shard_vectors_max").set_max(end - begin);
  }
}

std::vector<Bit> BatchRunner::run(std::span<const std::uint64_t> inputs,
                                  std::size_t num_vectors) {
  const std::size_t iw = program_.input_words;
  if (inputs.size() < num_vectors * iw) {
    throw std::invalid_argument("BatchRunner::run: input stream too short");
  }
  std::vector<Bit> out(num_vectors * probes_.size());
  const std::size_t shards = shard_count(num_vectors);
  if (shards == 0) return out;
  TraceSpan span(options_.metrics, "batch.run");
  if (options_.metrics) {
    options_.metrics->counter("batch.runs").add(1);
    options_.metrics->counter("batch.threads").set(pool_.threads());
  }
  const std::size_t quot = num_vectors / shards;
  const std::size_t rem = num_vectors % shards;
  // Workers write disjoint row ranges of `out`; order is fixed by the
  // shard boundaries, so the merge is free and deterministic.
  pool_.parallel_for(shards, [&](std::size_t s) {
    const std::size_t begin = s * quot + std::min(s, rem);
    const std::size_t end = begin + quot + (s < rem ? 1 : 0);
    if (program_.word_bits == 64) {
      run_shard<std::uint64_t>(inputs, begin, end, out);
    } else {
      run_shard<std::uint32_t>(inputs, begin, end, out);
    }
  });
  return out;
}

}  // namespace udsim
