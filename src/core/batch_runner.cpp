#include "core/batch_runner.h"

#include <algorithm>
#include <chrono>
#include <new>
#include <stdexcept>
#include <utility>

#include "core/width_dispatch.h"
#include "netlist/diagnostics.h"
#include "obs/request_trace.h"

namespace udsim {

namespace {

/// uint64 carrier entries one checkpointed arena occupies (wide words carry
/// word_bits/64 lanes each; see KernelRunner::save_arena).
[[nodiscard]] std::size_t carrier_words(const Program& p) noexcept {
  const std::size_t lanes =
      p.word_bits > 64 ? static_cast<std::size_t>(p.word_bits) / 64 : 1;
  return p.arena_words * lanes;
}

[[nodiscard]] std::uint64_t shard_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string_view run_status_name(RunStatus s) noexcept {
  switch (s) {
    case RunStatus::Complete:
      return "complete";
    case RunStatus::Cancelled:
      return "cancelled";
    case RunStatus::DeadlineExpired:
      return "deadline-expired";
  }
  return "?";
}

BatchRunner::BatchRunner(const Program& program, std::vector<ArenaProbe> probes,
                         BatchOptions options)
    : program_(program),
      probes_(std::move(probes)),
      options_(std::move(options)),
      pool_(options_.num_threads) {
  if (!width_available(program_.word_bits)) {
    const std::string msg = "BatchRunner: program word size " +
                            std::to_string(program_.word_bits) +
                            " is not executable on this build/CPU";
    if (options_.diag) {
      options_.diag->report(DiagCode::ProgramWordSize, DiagSeverity::Error,
                            "BatchRunner", msg);
    }
    throw std::invalid_argument(msg);
  }
  for (const ArenaProbe& p : probes_) {
    if (p.word >= program_.arena_words ||
        static_cast<int>(p.bit) >= program_.word_bits) {
      throw std::invalid_argument("BatchRunner: probe outside the arena");
    }
  }
  if (options_.min_chunk == 0) options_.min_chunk = 1;
  exec_ = ExecCounters::attach(options_.metrics, program_, options_.extra_pass_cost);
}

std::size_t BatchRunner::shard_count(std::size_t num_vectors) const noexcept {
  if (num_vectors == 0) return 0;
  const std::size_t by_threads = pool_.threads();
  const std::size_t by_chunk =
      (num_vectors + options_.min_chunk - 1) / options_.min_chunk;
  return std::max<std::size_t>(1, std::min(by_threads, by_chunk));
}

template <class Word>
void BatchRunner::run_shard(std::span<const std::uint64_t> inputs,
                            std::size_t shard_index, ShardSlot& slot,
                            std::span<Bit> out, unsigned attempt) {
  if (slot.next >= slot.end) return;  // resumed already-finished shard
  const std::size_t iw = program_.input_words;
  MetricsRegistry* const reg = options_.metrics;
  FaultInjector* const inj = options_.inject;
  const std::uint64_t t0 = reg ? shard_now_ns() : 0;
  const std::size_t start = slot.next;
  // Pool threads re-enter the request's trace scope from the explicitly
  // threaded id, so the shard's span — opened next — tags itself with the
  // "request" arg like the submitter-thread spans do.
  RequestTraceScope trace_scope(options_.trace_id);
  // The span owns the batch.shard.ns / batch.shard.calls counters and the
  // trace event; it closes after account() runs, covering the whole shard.
  TraceSpan span(reg, "batch.shard");
  span.arg("shard", shard_index);
  span.arg("begin", slot.begin);
  span.arg("end", slot.end);
  span.arg("attempt", attempt);

  if (inj && inj->fire(FaultSite::AllocFail, shard_index, start, attempt)) {
    metric_add(reg, "resil.injected", 1);
    throw std::bad_alloc();
  }
  KernelRunner<Word> runner(program_);
  std::vector<Word> row(iw);
  const auto load = [&](std::size_t v) {
    const std::uint64_t* src = inputs.data() + v * iw;
    for (std::size_t i = 0; i < iw; ++i) row[i] = static_cast<Word>(src[i]);
  };
  bool seam = false;
  if (start > slot.begin) {
    // Resume: the checkpointed arena IS the retained state after vector
    // start-1; restoring it replaces the seam replay.
    runner.load_arena(slot.arena);
  } else if (slot.begin > 0) {
    // Seam replay: the predecessor shard's final vector re-establishes the
    // retained state (previous-vector settled values); outputs discarded.
    load(slot.begin - 1);
    runner.run(row);
    seam = true;
  }

  const std::size_t cols = probes_.size();
  CancelPoll poll(options_.cancel);
  std::size_t v = start;
  StopReason stop = StopReason::None;
  // Shared exit accounting so the fault-throwing paths count their executed
  // passes exactly like the clean path does.
  const auto account = [&] {
    if (!reg) return;
    exec_.on_passes(v - start);  // payload counters: thread-count invariant
    if (seam) {
      reg->counter("batch.seam_vectors").add(1);
      reg->counter("batch.seam_ops").add(exec_.cost.ops);
    }
    const std::uint64_t elapsed = shard_now_ns() - t0;
    reg->counter("batch.shards").add(1);
    reg->counter("batch.shard_max.ns").set_max(elapsed);
    reg->counter("batch.shard_vectors_max").set_max(slot.end - slot.begin);
    // Wall-time distributions (DESIGN.md §5g): per-shard latency and the
    // amortized per-pass latency, from the two clock reads already taken.
    reg->histogram("batch.shard.us").record(elapsed / 1000);
    const std::uint64_t payload = v - start;
    if (payload != 0) {
      reg->histogram("batch.pass.ns").record(elapsed / payload);
    }
  };

  for (; v < slot.end; ++v) {
    stop = poll.poll();  // one relaxed load + branch (dead branch when null)
    if (inj != nullptr) {
      if (stop == StopReason::None &&
          inj->fire(FaultSite::DeadlineOverrun, shard_index, v, attempt)) {
        metric_add(reg, "resil.injected", 1);
        stop = StopReason::Deadline;
      }
      if (inj->fire(FaultSite::WorkerThrow, shard_index, v, attempt)) {
        metric_add(reg, "resil.injected", 1);
        account();
        throw InjectedFault(FaultSite::WorkerThrow, shard_index, v, attempt);
      }
      if (inj->fire(FaultSite::ArenaCorrupt, shard_index, v, attempt)) {
        metric_add(reg, "resil.injected", 1);
        const std::span<Word> arena = runner.mutable_arena();
        if (!arena.empty()) {
          arena[v % arena.size()] ^= static_cast<Word>(0xdeadbeefdeadbeefull);
        }
        account();
        // The corruption is trapped immediately (standing in for a detected
        // memory fault); the retry restarts from a fresh seam-replayed
        // arena, so the shard's final outputs stay bit-identical.
        throw InjectedFault(FaultSite::ArenaCorrupt, shard_index, v, attempt);
      }
    }
    if (stop != StopReason::None) break;
    load(v);
    runner.run(row);
    Bit* dst = out.data() + v * cols;
    for (std::size_t j = 0; j < cols; ++j) {
      dst[j] = runner.bit(probes_[j].word, probes_[j].bit);
    }
  }

  slot.next = v;
  slot.stop = stop;
  if (stop != StopReason::None && v > slot.begin) {
    runner.save_arena(slot.arena);  // the one piece of cross-vector state
  } else {
    slot.arena.clear();
  }
  account();
}

void BatchRunner::run_shard_any(std::span<const std::uint64_t> inputs,
                                std::size_t shard_index, ShardSlot& slot,
                                std::span<Bit> out, unsigned attempt) {
  switch (program_.word_bits) {
    case 64:
      run_shard<std::uint64_t>(inputs, shard_index, slot, out, attempt);
      break;
#if UDSIM_HAS_W128
    case 128:
      run_shard<u128>(inputs, shard_index, slot, out, attempt);
      break;
#endif
    case 256:
      run_shard<u256>(inputs, shard_index, slot, out, attempt);
      break;
    default:
      run_shard<std::uint32_t>(inputs, shard_index, slot, out, attempt);
      break;
  }
}

void BatchRunner::run_shard_guarded(std::span<const std::uint64_t> inputs,
                                    std::size_t shard_index, ShardSlot& slot,
                                    std::span<Bit> out) {
  MetricsRegistry* const reg = options_.metrics;
  for (unsigned attempt = 0;; ++attempt) {
    try {
      run_shard_any(inputs, shard_index, slot, out, attempt);
      return;
    } catch (const std::exception& e) {
      // A failed attempt left `slot` untouched (the shard restarts from its
      // seam / resume point), so a retry is a clean deterministic re-run.
      if (attempt >= options_.retry_limit) {
        slot.quarantined = true;
        metric_add(reg, "resil.quarantined", 1);
        if (options_.diag) {
          options_.diag->report(
              DiagCode::ShardQuarantined, DiagSeverity::Warning,
              "shard " + std::to_string(shard_index),
              "retries exhausted after " + std::to_string(attempt + 1) +
                  " attempts (" + e.what() + "); degrading to sequential replay");
        }
        return;
      }
      ++slot.retries;
      metric_add(reg, "resil.retries", 1);
      if (options_.diag) {
        options_.diag->report(DiagCode::ShardRetry, DiagSeverity::Warning,
                              "shard " + std::to_string(shard_index),
                              std::string("attempt ") + std::to_string(attempt) +
                                  " failed (" + e.what() + "); retrying");
      }
    }
  }
}

std::vector<Bit> BatchRunner::run(std::span<const std::uint64_t> inputs,
                                  std::size_t num_vectors) {
  ResilientBatch r = run_resilient(inputs, num_vectors, nullptr);
  if (r.status != RunStatus::Complete) {
    throw Cancelled(r.status == RunStatus::Cancelled ? StopReason::Cancelled
                                                     : StopReason::Deadline,
                    "batch.run", r.vectors_done);
  }
  return std::move(r.values);
}

ResilientBatch BatchRunner::run_resilient(std::span<const std::uint64_t> inputs,
                                          std::size_t num_vectors,
                                          const BatchCheckpoint* resume) {
  const std::size_t iw = program_.input_words;
  if (inputs.size() < num_vectors * iw) {
    throw std::invalid_argument("BatchRunner::run: input stream too short");
  }
  ResilientBatch result;
  result.values.resize(num_vectors * probes_.size());
  const std::size_t shards = shard_count(num_vectors);
  if (shards == 0) return result;  // zero vectors: no replay, no dispatch

  MetricsRegistry* const reg = options_.metrics;
  TraceSpan span(reg, "batch.run");
  if (reg) {
    reg->counter("batch.runs").add(1);
    reg->counter("batch.threads").set(pool_.threads());
  }

  const std::size_t quot = num_vectors / shards;
  const std::size_t rem = num_vectors % shards;
  std::vector<ShardSlot> slots(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    slots[s].begin = s * quot + std::min(s, rem);
    slots[s].end = slots[s].begin + quot + (s < rem ? 1 : 0);
    slots[s].next = slots[s].begin;
  }

  if (resume != nullptr) {
    const auto geometry = [&](const std::string& what) {
      throw CheckpointError(CheckpointError::Kind::Geometry,
                            "checkpoint does not match this run: " + what);
    };
    if (resume->word_bits != static_cast<std::uint32_t>(program_.word_bits) ||
        resume->arena_words != program_.arena_words ||
        resume->input_words != program_.input_words) {
      geometry("program shape differs");
    }
    if (resume->probe_count != probes_.size()) geometry("probe count differs");
    if (resume->num_vectors != num_vectors) geometry("vector count differs");
    if (resume->shards.size() != shards) {
      geometry("shard count differs (thread count or min_chunk changed)");
    }
    const std::size_t cols = probes_.size();
    for (std::size_t s = 0; s < shards; ++s) {
      const ShardCheckpoint& sc = resume->shards[s];
      if (sc.begin != slots[s].begin || sc.end != slots[s].end) {
        geometry("shard " + std::to_string(s) + " boundaries differ");
      }
      if (sc.next > sc.begin && sc.next < sc.end &&
          sc.arena.size() != carrier_words(program_)) {
        throw CheckpointError(CheckpointError::Kind::Corrupt,
                              "checkpoint shard " + std::to_string(s) +
                                  " is mid-stream but carries no arena");
      }
      slots[s].next = sc.next;
      slots[s].arena = sc.arena;
      std::copy(sc.rows.begin(), sc.rows.end(),
                result.values.begin() +
                    static_cast<std::ptrdiff_t>(sc.begin * cols));
    }
    metric_add(reg, "resil.resumes", 1);
    if (options_.diag) {
      options_.diag->report(DiagCode::CheckpointResumed, DiagSeverity::Note,
                            "batch.run",
                            "resumed at " + std::to_string(resume->vectors_done()) +
                                "/" + std::to_string(num_vectors) + " vectors");
    }
  }

  // Workers write disjoint row ranges of the output matrix; order is fixed
  // by the shard boundaries, so the merge is free and deterministic. Shard
  // bodies never throw (run_shard_guarded converts failures into retries
  // and quarantine marks), so the pool barrier always completes cleanly.
  pool_.parallel_for(shards, [&](std::size_t s) {
    run_shard_guarded(inputs, s, slots[s], result.values);
  });

  // Graceful degradation: quarantined shards re-run sequentially on the
  // calling thread, one final attempt each. A failure here is a genuine,
  // unrecoverable error and propagates to the caller. Skipped when the run
  // is already stopping — the checkpoint keeps the shard's resume point.
  const bool stopping =
      std::any_of(slots.begin(), slots.end(), [](const ShardSlot& s) {
        return s.stop != StopReason::None;
      });
  for (std::size_t s = 0; s < shards; ++s) {
    if (!slots[s].quarantined || stopping) continue;
    run_shard_any(inputs, s, slots[s], result.values,
                  options_.retry_limit + 1);
  }

  for (const ShardSlot& slot : slots) {
    result.retries += slot.retries;
    result.quarantined += slot.quarantined ? 1 : 0;
    result.vectors_done += slot.next - slot.begin;
  }

  StopReason reason = StopReason::None;
  for (const ShardSlot& slot : slots) {
    if (slot.stop == StopReason::Cancelled) reason = StopReason::Cancelled;
    if (slot.stop == StopReason::Deadline && reason == StopReason::None) {
      reason = StopReason::Deadline;
    }
  }
  if (reason == StopReason::None) {
    result.status = RunStatus::Complete;
    return result;
  }

  result.status = reason == StopReason::Cancelled ? RunStatus::Cancelled
                                                  : RunStatus::DeadlineExpired;
  metric_add(reg, reason == StopReason::Cancelled ? "resil.cancelled"
                                                  : "resil.deadline",
             1);
  // Assemble the resumable snapshot: per shard, the resume point, the
  // settled arena (mid-stream shards only) and the completed output rows.
  BatchCheckpoint& ck = result.checkpoint;
  ck.word_bits = static_cast<std::uint32_t>(program_.word_bits);
  ck.arena_words = program_.arena_words;
  ck.input_words = program_.input_words;
  ck.probe_count = static_cast<std::uint32_t>(probes_.size());
  ck.num_vectors = num_vectors;
  ck.shards.reserve(shards);
  const std::size_t cols = probes_.size();
  for (ShardSlot& slot : slots) {
    ShardCheckpoint sc;
    sc.begin = slot.begin;
    sc.end = slot.end;
    sc.next = slot.next;
    sc.arena = std::move(slot.arena);
    sc.rows.assign(
        result.values.begin() + static_cast<std::ptrdiff_t>(slot.begin * cols),
        result.values.begin() + static_cast<std::ptrdiff_t>(slot.next * cols));
    ck.shards.push_back(std::move(sc));
  }
  metric_add(reg, "resil.checkpoints", 1);
  if (options_.diag) {
    options_.diag->report(
        DiagCode::RunCancelled, DiagSeverity::Note, "batch.run",
        std::string(stop_reason_name(reason)) + " after " +
            std::to_string(result.vectors_done) + "/" +
            std::to_string(num_vectors) + " vectors; checkpoint captured");
  }
  return result;
}

}  // namespace udsim
