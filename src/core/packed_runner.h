// Packed (data-parallel) batch execution: one independent input vector per
// bit lane of the executor word (DESIGN.md §5j).
//
// Scalar compiled simulation leaves word_bits - 1 lanes of every logical op
// idle; the packed LCC program (compile_lcc packed mode, paper §1) instead
// loads whole input words — one vector per bit — so a single executor pass
// settles word_bits independent vectors. Throughput therefore scales with
// the dispatched lane width: a 256-bit pass retires 8× the vectors of a
// 32-bit pass over the same op stream, which is where the wide executors
// pay off (a *scalar* wide run computes the same one vector with wider,
// slower words).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/compile_budget.h"
#include "netlist/logic.h"
#include "netlist/netlist.h"
#include "obs/metrics.h"

namespace udsim {

/// Result of run_packed_lcc: settled primary-output values per vector, in
/// submission order (identical to Simulator::run_batch rows).
struct PackedRunResult {
  std::vector<NetId> outputs;  ///< nets sampled (primary outputs, netlist order)
  std::vector<Bit> values;     ///< row-major: one row of outputs per vector
  std::size_t vectors = 0;
  int word_bits = 32;          ///< dispatched lane width the run executed at
  std::uint64_t passes = 0;    ///< executor passes = ceil(vectors / word_bits)

  [[nodiscard]] Bit value(std::size_t vector, std::size_t output) const {
    return values.at(vector * outputs.size() + output);
  }
};

/// Compile the zero-delay LCC program in packed mode at the dispatched lane
/// width and run the whole stream through it, word_bits vectors per pass.
/// `vectors` is row-major, one Bit per primary input per row; `word_bits`
/// follows the dispatch_width convention (0 = 32-bit default, kWidthWidest,
/// or an explicit width; UDSIM_FORCE_WIDTH overrides). With `metrics` set
/// the run records the exact exec.* pass counters plus `packed.lanes` (the
/// lane count) and `packed.vectors`. Results are bit-identical to a scalar
/// run_batch over the same stream for every lane width (enforced by
/// tests/width_matrix_test.cpp).
[[nodiscard]] PackedRunResult run_packed_lcc(const Netlist& nl,
                                             std::span<const Bit> vectors,
                                             int word_bits = 0,
                                             MetricsRegistry* metrics = nullptr,
                                             const CompileGuard* guard = nullptr);

}  // namespace udsim
