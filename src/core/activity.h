// Switching-activity accumulation for dynamic-power estimation.
//
// Toggle counting exploits the parallel technique's bit-fields directly:
// the transitions of a net during one vector are popcount((f >> 1) ^ f)
// over the significant bits — one XOR and one popcount per word instead of
// a walk over the waveform. This is the kind of analysis the paper's
// bit-field representation makes nearly free.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/waveform.h"
#include "netlist/netlist.h"
#include "parsim/parallel_sim.h"

namespace udsim {

class ToggleCounter {
 public:
  explicit ToggleCounter(std::size_t nets) : toggles_(nets, 0) {}

  /// Accumulate from a parallel-technique simulator after a step(). Uses
  /// the oracle convention: transitions are value changes at times
  /// 1..depth; the primary-input step at time 0 does not count. Exact for
  /// every alignment mode (a positively-aligned field's missing low times
  /// are recovered from the previous final value).
  template <class Word>
  void accumulate(const ParallelSim<Word>& sim, const Netlist& nl) {
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      const NetId id{n};
      if (nl.net(id).is_primary_input) continue;  // changes only at time 0
      const auto field = sim.field(id);
      const int width = sim.compiled().widths[n];
      toggles_[n] += transitions_in_field<Word>(field, width);
      const int a = sim.compiled().plan.net_align[n];
      if (a >= 1) {
        // The pair (a-1, a) straddles the field edge; time a-1 precedes the
        // field and holds the previous vector's final value.
        toggles_[n] += sim.value_at(id, a - 1) != sim.value_at(id, a);
      }
    }
  }

  /// Accumulate from an oracle waveform (reference path).
  void accumulate(const Waveform& wf) {
    for (std::uint32_t n = 0; n < wf.net_count(); ++n) {
      toggles_[n] += wf.transition_count(NetId{n});
    }
  }

  [[nodiscard]] std::uint64_t toggles(NetId n) const { return toggles_.at(n.value); }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (std::uint64_t x : toggles_) t += x;
    return t;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& per_net() const noexcept {
    return toggles_;
  }

  /// Bit-parallel transition count of the low `width` bits of a field:
  /// the number of adjacent bit pairs (i-1, i), 1 <= i < width, that differ.
  template <class Word>
  [[nodiscard]] static std::uint64_t transitions_in_field(std::span<const Word> field,
                                                          int width) {
    constexpr int W = static_cast<int>(sizeof(Word) * 8);
    std::uint64_t count = 0;
    for (int w = 0; w * W < width; ++w) {
      // Within-word pairs: bit j of x flags bits (wW+j, wW+j+1) differing.
      Word x = static_cast<Word>((field[static_cast<std::size_t>(w)] >> 1) ^
                                 field[static_cast<std::size_t>(w)]);
      const int pairs = std::min(W - 1, width - w * W - 1);
      if (pairs <= 0) break;
      if (pairs < W - 1) {
        x &= static_cast<Word>((Word{1} << pairs) - 1);
      } else {
        x &= static_cast<Word>(~(Word{1} << (W - 1)));
      }
      count += static_cast<std::uint64_t>(std::popcount(x));
      // Cross-word pair ((w+1)W - 1, (w+1)W).
      if ((w + 1) * W < width) {
        const Word lo = static_cast<Word>(field[static_cast<std::size_t>(w)] >> (W - 1)) & Word{1};
        const Word hi = field[static_cast<std::size_t>(w) + 1] & Word{1};
        count += lo != hi;
      }
    }
    return count;
  }

 private:
  std::vector<std::uint64_t> toggles_;
};

}  // namespace udsim
