// Minimal IEEE-1364 VCD (value change dump) writer so unit-delay waveforms
// can be inspected in standard viewers (GTKWave etc.). Time is measured in
// gate delays; each simulated input vector advances the dump by depth+1
// ticks so successive vectors butt against each other on the time axis.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/waveform.h"
#include "netlist/netlist.h"

namespace udsim {

class VcdWriter {
 public:
  /// Dump changes of `nets` (empty = all nets) of `nl`.
  VcdWriter(std::ostream& os, const Netlist& nl, std::span<const NetId> nets = {});

  /// Append one vector's waveform. Values are emitted only when they change
  /// (including against the previous vector's final value).
  void add_vector(const Waveform& wf);

  /// Emit the final timestamp. Called automatically by the destructor.
  void finish();

  ~VcdWriter();
  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  [[nodiscard]] std::uint64_t current_time() const noexcept { return time_; }

 private:
  [[nodiscard]] const std::string& id_of(std::size_t k) const { return ids_[k]; }

  std::ostream& os_;
  std::vector<NetId> nets_;
  std::vector<std::string> ids_;   ///< VCD identifier codes
  std::vector<int> last_;          ///< last emitted value, -1 = none
  std::uint64_t time_ = 0;
  bool finished_ = false;
};

}  // namespace udsim
