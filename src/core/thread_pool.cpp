#include "core/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace udsim {

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = hardware_threads();
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  struct Barrier {
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::exception_ptr error;
    std::atomic<bool> failed{false};
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = n;
  for (std::size_t i = 0; i < n; ++i) {
    submit([barrier, &body, i] {
      try {
        // Fail-fast: once any body has thrown, indices not yet started are
        // skipped (they still count toward the barrier).
        if (!barrier->failed.load(std::memory_order_acquire)) body(i);
      } catch (...) {
        barrier->failed.store(true, std::memory_order_release);
        std::lock_guard lock(barrier->mu);
        if (!barrier->error) barrier->error = std::current_exception();
      }
      std::lock_guard lock(barrier->mu);
      if (--barrier->remaining == 0) barrier->done_cv.notify_all();
    });
  }
  std::unique_lock lock(barrier->mu);
  barrier->done_cv.wait(lock, [&] { return barrier->remaining == 0; });
  if (barrier->error) std::rethrow_exception(barrier->error);
}

}  // namespace udsim
