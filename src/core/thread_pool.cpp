#include "core/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>
#include <utility>

namespace udsim {

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = hardware_threads();
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(ShutdownMode::Drain); }

std::size_t ThreadPool::shutdown(ShutdownMode mode) {
  std::deque<std::function<void()>> discarded;
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    if (mode == ShutdownMode::Cancel) discarded.swap(queue_);
  }
  work_cv_.notify_all();
  // Cancelled tasks are destroyed here, outside the lock and on the
  // caller's thread — deterministic destruction order for captured state
  // (a promise in a discarded task is abandoned *now*, not whenever a
  // worker happens to die).
  const std::size_t cancelled = discarded.size();
  discarded.clear();
  {
    std::lock_guard lock(mu_);
    if (joined_) return cancelled;
    joined_ = true;
  }
  for (std::thread& w : workers_) w.join();
  return cancelled;
}

bool ThreadPool::stopped() const noexcept {
  std::lock_guard lock(mu_);
  return stop_;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    if (stop_) {
      throw std::runtime_error(
          "ThreadPool::submit: pool is stopped; the task would never run");
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  {
    std::lock_guard lock(mu_);
    if (stop_) {
      throw std::runtime_error(
          "ThreadPool::parallel_for: pool is stopped; the loop would never run");
    }
  }
  if (threads() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  struct Barrier {
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::exception_ptr error;
    std::atomic<bool> failed{false};
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = n;
  std::exception_ptr submit_error;
  std::size_t submitted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      submit([barrier, &body, i] {
        try {
          // Fail-fast: once any body has thrown, indices not yet started are
          // skipped (they still count toward the barrier).
          if (!barrier->failed.load(std::memory_order_acquire)) body(i);
        } catch (...) {
          barrier->failed.store(true, std::memory_order_release);
          std::lock_guard lock(barrier->mu);
          if (!barrier->error) barrier->error = std::current_exception();
        }
        std::lock_guard lock(barrier->mu);
        if (--barrier->remaining == 0) barrier->done_cv.notify_all();
      });
      ++submitted;
    } catch (...) {
      // Pool shut down mid-loop. Tasks already queued still reference
      // `body` and the barrier, so we must NOT leave this frame until they
      // have drained: mark the run failed (unstarted tasks skip their
      // body), settle the barrier for the never-submitted tail, and fall
      // through to the normal wait below.
      submit_error = std::current_exception();
      barrier->failed.store(true, std::memory_order_release);
      std::lock_guard lock(barrier->mu);
      barrier->remaining -= n - submitted;
      if (barrier->remaining == 0) barrier->done_cv.notify_all();
      break;
    }
  }
  std::unique_lock lock(barrier->mu);
  barrier->done_cv.wait(lock, [&] { return barrier->remaining == 0; });
  if (submit_error) std::rethrow_exception(submit_error);
  if (barrier->error) std::rethrow_exception(barrier->error);
}

}  // namespace udsim
