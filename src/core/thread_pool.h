// Minimal fixed-size worker pool for the batch simulation layer.
//
// One queue, N workers, blocking parallel_for. Deliberately small: the batch
// layer's unit of work is a whole vector-stream shard (thousands of executor
// passes), so per-task overhead is irrelevant and work stealing would buy
// nothing. `parallel_for` is a barrier — it returns only when every index
// has been processed — and rethrows the first exception a body raised.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace udsim {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers (0 = all hardware threads).
  explicit ThreadPool(unsigned num_threads = 0);

  /// Joins all workers; pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task for any worker.
  void submit(std::function<void()> task);

  /// Run body(0) … body(n-1) across the pool and block until all complete.
  /// Indices are claimed in order but may execute concurrently; with a
  /// single worker (or n == 1) the loop runs inline on the calling thread,
  /// giving an exact single-threaded execution for fallback paths.
  ///
  /// Fail-fast guarantee: after the first body throws, indices that have
  /// not yet started are skipped rather than executed; the call still
  /// blocks until every submitted task has drained, then rethrows the
  /// first exception. Bodies already running when the failure happens run
  /// to completion (there is no preemption). The inline single-thread path
  /// fail-fasts trivially by propagating the throw immediately.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency(), never less than 1.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace udsim
