// Minimal fixed-size worker pool for the batch simulation layer.
//
// One queue, N workers, blocking parallel_for. Deliberately small: the batch
// layer's unit of work is a whole vector-stream shard (thousands of executor
// passes), so per-task overhead is irrelevant and work stealing would buy
// nothing. `parallel_for` is a barrier — it returns only when every index
// has been processed — and rethrows the first exception a body raised.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace udsim {

class ThreadPool {
 public:
  /// What shutdown() does with tasks that were queued but never started.
  enum class ShutdownMode : std::uint8_t {
    Drain,   ///< run every pending task to completion, then join
    Cancel,  ///< discard pending tasks (their captured state is destroyed
             ///  on the shutdown caller's thread), join after in-flight
             ///  tasks finish
  };

  /// Spawn `num_threads` workers (0 = all hardware threads).
  explicit ThreadPool(unsigned num_threads = 0);

  /// shutdown(Drain): pending tasks still run, then workers join. The
  /// destructor never abandons a queued task — a task either executes or
  /// was already discarded by an explicit shutdown(Cancel) — so captured
  /// state is always destroyed deterministically, never leaked into a
  /// detached thread (tests/thread_pool_test.cpp destructs under load with
  /// TSAN to hold this).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Stop accepting work and join the workers. Idempotent; after the first
  /// call submit() throws and parallel_for() of n > 0 throws. With Cancel,
  /// tasks still queued are destroyed without running and the number
  /// discarded is returned; with Drain every queued task runs first.
  /// Cancel must not race a parallel_for blocked on this pool (its barrier
  /// tasks would be discarded and the barrier never settle) — Drain, the
  /// destructor's mode, is always safe.
  std::size_t shutdown(ShutdownMode mode = ShutdownMode::Drain);

  /// True once shutdown() has begun (or the destructor is running).
  [[nodiscard]] bool stopped() const noexcept;

  /// Number of worker threads.
  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task for any worker. Throws std::runtime_error once the
  /// pool is stopped — a silently enqueued-but-never-run task would hold
  /// its captured state (promises, buffers) forever, which is exactly the
  /// lost-request failure mode the service layer must exclude.
  void submit(std::function<void()> task);

  /// Run body(0) … body(n-1) across the pool and block until all complete.
  /// Indices are claimed in order but may execute concurrently; with a
  /// single worker (or n == 1) the loop runs inline on the calling thread,
  /// giving an exact single-threaded execution for fallback paths.
  ///
  /// Fail-fast guarantee: after the first body throws, indices that have
  /// not yet started are skipped rather than executed; the call still
  /// blocks until every submitted task has drained, then rethrows the
  /// first exception. Bodies already running when the failure happens run
  /// to completion (there is no preemption). The inline single-thread path
  /// fail-fasts trivially by propagating the throw immediately.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency(), never less than 1.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  bool joined_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace udsim
