// Owns the persistent word arena of a compiled program and runs vectors
// through it. Shared by every compiled engine (LCC, PC-set, parallel).
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "ir/executor.h"
#include "ir/program.h"
#include "netlist/logic.h"
#include "obs/pass_cost.h"

namespace udsim {

/// Location of one bit inside a compiled program's word arena. The compiled
/// engines expose the arena position of each net's settled value as an
/// ArenaProbe (final_arena_probe) so that engine-agnostic code — the batch
/// layer above all — can sample outputs without knowing the field layout.
struct ArenaProbe {
  std::uint32_t word = 0;
  std::uint8_t bit = 0;
};

template <class Word>
class KernelRunner {
 public:
  explicit KernelRunner(const Program& program) : program_(program) {
    if (program.word_bits != static_cast<int>(sizeof(Word) * 8)) {
      throw std::invalid_argument("KernelRunner: word size mismatch with program");
    }
    arena_.assign(program.arena_words, 0);
    initialize_arena<Word>(program, std::span<Word>(arena_));
  }

  /// Simulate one vector: `in` is one word per primary input (bit 0 in
  /// scalar mode, one lane per bit in packed mode).
  void run(std::span<const Word> in) {
    execute<Word>(program_, in, arena_);
    exec_.on_passes(1);  // single branch when no registry is attached
  }

  /// Attach (or detach, with nullptr) a metrics registry: every subsequent
  /// pass bumps the exact per-pass execution counters (sim.vectors,
  /// exec.ops, exec.words_*, ... — see obs/pass_cost.h). `extra_per_pass`
  /// adds engine-specific per-pass constants under the given counter names.
  void set_metrics(MetricsRegistry* reg,
                   const std::vector<std::pair<std::string, std::uint64_t>>&
                       extra_per_pass = {}) {
    exec_ = ExecCounters::attach(reg, program_, extra_per_pass);
  }

  [[nodiscard]] Word word(std::uint32_t idx) const { return arena_.at(idx); }
  [[nodiscard]] Bit bit(std::uint32_t idx, unsigned bit_pos) const {
    return static_cast<Bit>((arena_.at(idx) >> bit_pos) & 1u);
  }
  [[nodiscard]] std::span<const Word> arena() const noexcept { return arena_; }
  [[nodiscard]] const Program& program() const noexcept { return program_; }

  /// Clear state back to the post-construction arena.
  void reset() {
    arena_.assign(program_.arena_words, 0);
    initialize_arena<Word>(program_, std::span<Word>(arena_));
  }

 private:
  const Program& program_;
  std::vector<Word> arena_;
  ExecCounters exec_;
};

}  // namespace udsim
