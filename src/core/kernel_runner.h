// Owns the persistent word arena of a compiled program and runs vectors
// through it. Shared by every compiled engine (LCC, PC-set, parallel).
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/executor.h"
#include "ir/program.h"
#include "netlist/diagnostics.h"
#include "netlist/logic.h"
#include "obs/pass_cost.h"
#include "resilience/cancel.h"

namespace udsim {

/// Location of one bit inside a compiled program's word arena. The compiled
/// engines expose the arena position of each net's settled value as an
/// ArenaProbe (final_arena_probe) so that engine-agnostic code — the batch
/// layer above all — can sample outputs without knowing the field layout.
struct ArenaProbe {
  std::uint32_t word = 0;
  std::uint8_t bit = 0;
};

/// A program compiled for one word size handed to a runner instantiated at
/// another. Carries both widths so callers can surface the mismatch as a
/// structured diagnostic (DiagCode::ProgramWordSize) instead of a bare
/// string.
class WordSizeMismatch : public std::invalid_argument {
 public:
  WordSizeMismatch(int program_bits, int runner_bits)
      : std::invalid_argument(
            "KernelRunner: program compiled for " +
            std::to_string(program_bits) + "-bit words, runner instantiated at " +
            std::to_string(runner_bits) + " bits"),
        program_bits_(program_bits),
        runner_bits_(runner_bits) {}
  [[nodiscard]] int program_bits() const noexcept { return program_bits_; }
  [[nodiscard]] int runner_bits() const noexcept { return runner_bits_; }

 private:
  int program_bits_;
  int runner_bits_;
};

template <class Word>
class KernelRunner {
 public:
  /// `diag`, when given, receives the structured record of a word-size
  /// mismatch before WordSizeMismatch is thrown.
  explicit KernelRunner(const Program& program, Diagnostics* diag = nullptr)
      : program_(program) {
    constexpr int kRunnerBits = static_cast<int>(sizeof(Word) * 8);
    if (program.word_bits != kRunnerBits) {
      const WordSizeMismatch err(program.word_bits, kRunnerBits);
      if (diag) {
        diag->report(DiagCode::ProgramWordSize, DiagSeverity::Error,
                     "KernelRunner", err.what());
      }
      throw err;
    }
    arena_.assign(program.arena_words, 0);
    initialize_arena<Word>(program, std::span<Word>(arena_));
  }

  /// Simulate one vector: `in` is one word per primary input (bit 0 in
  /// scalar mode, one lane per bit in packed mode). With a cancel token
  /// attached, a cancelled/deadline-expired token raises Cancelled *before*
  /// the pass starts, so the settled arena always reflects whole vectors.
  void run(std::span<const Word> in) {
    const StopReason r = poll_.poll();  // one dead branch when detached
    if (r != StopReason::None) throw Cancelled(r, "kernel.run", passes_ + 1);
    execute<Word>(program_, in, arena_);
    ++passes_;
    exec_.on_passes(1);  // single branch when no registry is attached
  }

  /// Attach (or detach, with nullptr) a metrics registry: every subsequent
  /// pass bumps the exact per-pass execution counters (sim.vectors,
  /// exec.ops, exec.words_*, ... — see obs/pass_cost.h). `extra_per_pass`
  /// adds engine-specific per-pass constants under the given counter names.
  void set_metrics(MetricsRegistry* reg,
                   const std::vector<std::pair<std::string, std::uint64_t>>&
                       extra_per_pass = {}) {
    exec_ = ExecCounters::attach(reg, program_, extra_per_pass);
  }

  [[nodiscard]] Word word(std::uint32_t idx) const { return arena_.at(idx); }
  [[nodiscard]] Bit bit(std::uint32_t idx, unsigned bit_pos) const {
    return static_cast<Bit>(word_bit(arena_.at(idx), bit_pos));
  }
  [[nodiscard]] std::span<const Word> arena() const noexcept { return arena_; }
  [[nodiscard]] const Program& program() const noexcept { return program_; }

  /// Attach (or detach, with nullptr) a cancel token; see run().
  void set_cancel(const CancelToken* token) noexcept { poll_ = CancelPoll(token); }

  /// Vectors executed since construction/reset.
  [[nodiscard]] std::uint64_t passes() const noexcept { return passes_; }

  /// Copy the settled arena into a word-size-independent uint64 carrier
  /// (the checkpoint representation; DESIGN.md §5f). Wide words occupy
  /// kWordU64Lanes<Word> consecutive carrier entries, low lane first.
  void save_arena(std::vector<std::uint64_t>& out) const {
    constexpr std::size_t L = kWordU64Lanes<Word>;
    out.resize(arena_.size() * L);
    for (std::size_t i = 0; i < arena_.size(); ++i) {
      for (std::size_t l = 0; l < L; ++l) {
        out[i * L + l] = word_u64_lane(arena_[i], l);
      }
    }
  }

  /// Restore an arena previously captured with save_arena — the one piece
  /// of cross-vector state, so a restored runner continues bit-identically.
  void load_arena(std::span<const std::uint64_t> saved) {
    constexpr std::size_t L = kWordU64Lanes<Word>;
    if (saved.size() != arena_.size() * L) {
      throw std::invalid_argument("KernelRunner::load_arena: size mismatch");
    }
    for (std::size_t i = 0; i < arena_.size(); ++i) {
      arena_[i] = word_from_u64_lanes<Word>(&saved[i * L]);
    }
  }

  /// Mutable arena access for the fault-injection harness and tests; normal
  /// clients never need this.
  [[nodiscard]] std::span<Word> mutable_arena() noexcept { return arena_; }

  /// Clear state back to the post-construction arena.
  void reset() {
    arena_.assign(program_.arena_words, 0);
    initialize_arena<Word>(program_, std::span<Word>(arena_));
    passes_ = 0;
  }

 private:
  const Program& program_;
  std::vector<Word> arena_;
  ExecCounters exec_;
  CancelPoll poll_{nullptr};
  std::uint64_t passes_ = 0;
};

}  // namespace udsim
