// Owns the persistent word arena of a compiled program and runs vectors
// through it. Shared by every compiled engine (LCC, PC-set, parallel).
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "ir/executor.h"
#include "ir/program.h"
#include "netlist/logic.h"
#include "obs/pass_cost.h"
#include "resilience/cancel.h"

namespace udsim {

/// Location of one bit inside a compiled program's word arena. The compiled
/// engines expose the arena position of each net's settled value as an
/// ArenaProbe (final_arena_probe) so that engine-agnostic code — the batch
/// layer above all — can sample outputs without knowing the field layout.
struct ArenaProbe {
  std::uint32_t word = 0;
  std::uint8_t bit = 0;
};

template <class Word>
class KernelRunner {
 public:
  explicit KernelRunner(const Program& program) : program_(program) {
    if (program.word_bits != static_cast<int>(sizeof(Word) * 8)) {
      throw std::invalid_argument("KernelRunner: word size mismatch with program");
    }
    arena_.assign(program.arena_words, 0);
    initialize_arena<Word>(program, std::span<Word>(arena_));
  }

  /// Simulate one vector: `in` is one word per primary input (bit 0 in
  /// scalar mode, one lane per bit in packed mode). With a cancel token
  /// attached, a cancelled/deadline-expired token raises Cancelled *before*
  /// the pass starts, so the settled arena always reflects whole vectors.
  void run(std::span<const Word> in) {
    const StopReason r = poll_.poll();  // one dead branch when detached
    if (r != StopReason::None) throw Cancelled(r, "kernel.run", passes_ + 1);
    execute<Word>(program_, in, arena_);
    ++passes_;
    exec_.on_passes(1);  // single branch when no registry is attached
  }

  /// Attach (or detach, with nullptr) a metrics registry: every subsequent
  /// pass bumps the exact per-pass execution counters (sim.vectors,
  /// exec.ops, exec.words_*, ... — see obs/pass_cost.h). `extra_per_pass`
  /// adds engine-specific per-pass constants under the given counter names.
  void set_metrics(MetricsRegistry* reg,
                   const std::vector<std::pair<std::string, std::uint64_t>>&
                       extra_per_pass = {}) {
    exec_ = ExecCounters::attach(reg, program_, extra_per_pass);
  }

  [[nodiscard]] Word word(std::uint32_t idx) const { return arena_.at(idx); }
  [[nodiscard]] Bit bit(std::uint32_t idx, unsigned bit_pos) const {
    return static_cast<Bit>((arena_.at(idx) >> bit_pos) & 1u);
  }
  [[nodiscard]] std::span<const Word> arena() const noexcept { return arena_; }
  [[nodiscard]] const Program& program() const noexcept { return program_; }

  /// Attach (or detach, with nullptr) a cancel token; see run().
  void set_cancel(const CancelToken* token) noexcept { poll_ = CancelPoll(token); }

  /// Vectors executed since construction/reset.
  [[nodiscard]] std::uint64_t passes() const noexcept { return passes_; }

  /// Copy the settled arena into a word-size-independent uint64 carrier
  /// (the checkpoint representation; DESIGN.md §5f).
  void save_arena(std::vector<std::uint64_t>& out) const {
    out.assign(arena_.begin(), arena_.end());
  }

  /// Restore an arena previously captured with save_arena — the one piece
  /// of cross-vector state, so a restored runner continues bit-identically.
  void load_arena(std::span<const std::uint64_t> saved) {
    if (saved.size() != arena_.size()) {
      throw std::invalid_argument("KernelRunner::load_arena: size mismatch");
    }
    for (std::size_t i = 0; i < saved.size(); ++i) {
      arena_[i] = static_cast<Word>(saved[i]);
    }
  }

  /// Mutable arena access for the fault-injection harness and tests; normal
  /// clients never need this.
  [[nodiscard]] std::span<Word> mutable_arena() noexcept { return arena_; }

  /// Clear state back to the post-construction arena.
  void reset() {
    arena_.assign(program_.arena_words, 0);
    initialize_arena<Word>(program_, std::span<Word>(arena_));
    passes_ = 0;
  }

 private:
  const Program& program_;
  std::vector<Word> arena_;
  ExecCounters exec_;
  CancelPoll poll_{nullptr};
  std::uint64_t passes_ = 0;
};

}  // namespace udsim
