// Owns the persistent word arena of a compiled program and runs vectors
// through it. Shared by every compiled engine (LCC, PC-set, parallel).
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "ir/executor.h"
#include "ir/program.h"
#include "netlist/logic.h"

namespace udsim {

template <class Word>
class KernelRunner {
 public:
  explicit KernelRunner(const Program& program) : program_(program) {
    if (program.word_bits != static_cast<int>(sizeof(Word) * 8)) {
      throw std::invalid_argument("KernelRunner: word size mismatch with program");
    }
    arena_.assign(program.arena_words, 0);
    initialize_arena<Word>(program, std::span<Word>(arena_));
  }

  /// Simulate one vector: `in` is one word per primary input (bit 0 in
  /// scalar mode, one lane per bit in packed mode).
  void run(std::span<const Word> in) { execute<Word>(program_, in, arena_); }

  [[nodiscard]] Word word(std::uint32_t idx) const { return arena_.at(idx); }
  [[nodiscard]] Bit bit(std::uint32_t idx, unsigned bit_pos) const {
    return static_cast<Bit>((arena_.at(idx) >> bit_pos) & 1u);
  }
  [[nodiscard]] std::span<const Word> arena() const noexcept { return arena_; }
  [[nodiscard]] const Program& program() const noexcept { return program_; }

  /// Clear state back to the post-construction arena.
  void reset() {
    arena_.assign(program_.arena_words, 0);
    initialize_arena<Word>(program_, std::span<Word>(arena_));
  }

 private:
  const Program& program_;
  std::vector<Word> arena_;
};

}  // namespace udsim
