// EngineKind: the simulation techniques this library implements, as one
// enum shared by the simulator facade, the compile-cost model, and the
// fallback policy. Lives in its own header so low-level layers (analysis)
// can name engines without pulling in the full simulator facade.
#pragma once

#include <string_view>

namespace udsim {

enum class EngineKind {
  Event2,               ///< interpreted event-driven, 2-valued (Fig. 19 col 2)
  Event3,               ///< interpreted event-driven, 3-valued (Fig. 19 col 1)
  PCSet,                ///< PC-set method (Fig. 19 col 3)
  Parallel,             ///< parallel technique, unoptimized (Fig. 19 col 4)
  ParallelTrimmed,      ///< + bit-field trimming (Fig. 20)
  ParallelPathTracing,  ///< + path-tracing shift elimination (Fig. 23)
  ParallelCycleBreaking,///< + cycle-breaking shift elimination (Fig. 23)
  ParallelCombined,     ///< path tracing + trimming (Fig. 24)
  ZeroDelayLcc,         ///< zero-delay compiled simulation (context exp.)
  Native,               ///< dlopen'd machine code over the combined program (§5h)
};

[[nodiscard]] std::string_view engine_name(EngineKind k) noexcept;

/// True for the engines that materialize a straight-line compiled Program
/// (and therefore have a predictable compile cost); false for the
/// interpreted event-driven engines.
[[nodiscard]] constexpr bool is_compiled_engine(EngineKind k) noexcept {
  return k != EngineKind::Event2 && k != EngineKind::Event3;
}

}  // namespace udsim
