// Runtime lane-width dispatch (DESIGN.md §5j).
//
// The executors run at 32, 64, 128 (__int128) and 256 (four uint64 lanes,
// AVX2-vectorized where the build applied -mavx2) bits per arena word. This
// module owns the width ladder — which widths this build compiled, which
// the running CPU may execute — and the one dispatch point the facades call
// at make_simulator / SimService-construction time.
//
// `UDSIM_FORCE_WIDTH=<bits>` overrides every request, the deterministic
// testing hook: forcing an unavailable or unknown width steps down the
// ladder (256 → 128 → 64 → 32) with a structured WidthFallback diagnostic
// instead of failing. The chosen width is recorded in the `dispatch.width`
// gauge when a registry is attached.
#pragma once

#include <vector>

#include "netlist/diagnostics.h"
#include "obs/metrics.h"

namespace udsim {

/// Request value meaning "the widest lane this build + CPU supports".
inline constexpr int kWidthWidest = -1;

/// True when this build carries an executor for the width (128 depends on
/// the compiler's __int128; 32/64/256 are always compiled).
[[nodiscard]] bool width_compiled(int bits) noexcept;

/// True when the width is compiled AND the running CPU may execute it (the
/// 256-bit lane requires AVX2 whenever its TU was built with -mavx2).
[[nodiscard]] bool width_available(int bits) noexcept;

/// Ascending list of available widths; always contains 32 and 64.
[[nodiscard]] std::vector<int> supported_widths();

/// The widest available width.
[[nodiscard]] int widest_width() noexcept;

struct WidthChoice {
  int word_bits = 32;      ///< the width the executors will run at
  int requested = 0;       ///< caller's request (after any env override)
  bool forced = false;     ///< UDSIM_FORCE_WIDTH took effect
  bool fell_back = false;  ///< request unavailable; ladder stepped down
};

/// Resolve a width request. `requested` is 0 (the historical 32-bit
/// default), kWidthWidest, or an explicit bit count; UDSIM_FORCE_WIDTH
/// overrides it when set. An unavailable or unknown request falls down the
/// ladder to the widest available width not above it (and up to 32 from
/// below), reported as DiagCode::WidthFallback into `diag`. The chosen
/// width is recorded in the `dispatch.width` gauge of `metrics`.
[[nodiscard]] WidthChoice dispatch_width(int requested = 0,
                                         Diagnostics* diag = nullptr,
                                         MetricsRegistry* metrics = nullptr);

}  // namespace udsim
