#include "core/width_dispatch.h"

#include <cstdlib>
#include <string>

#include "ir/wide_word.h"

namespace udsim {

namespace {

constexpr int kLadder[] = {256, 128, 64, 32};

[[nodiscard]] bool cpu_has_avx2() noexcept {
#if defined(UDSIM_W256_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  // The u256 TU was built as portable lane loops (or the target has no CPU
  // feature probe): no ISA requirement beyond what the whole build assumes.
  return true;
#endif
}

/// UDSIM_FORCE_WIDTH as an int, or 0 when unset/unparseable.
[[nodiscard]] int force_width_env() noexcept {
  const char* s = std::getenv("UDSIM_FORCE_WIDTH");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s) return 0;
  return static_cast<int>(v);
}

}  // namespace

bool width_compiled(int bits) noexcept {
  switch (bits) {
    case 32:
    case 64:
    case 256:
      return true;
    case 128:
      return UDSIM_HAS_W128 != 0;
    default:
      return false;
  }
}

bool width_available(int bits) noexcept {
  if (!width_compiled(bits)) return false;
  return bits != 256 || cpu_has_avx2();
}

std::vector<int> supported_widths() {
  std::vector<int> widths;
  for (auto it = std::end(kLadder); it != std::begin(kLadder);) {
    --it;
    if (width_available(*it)) widths.push_back(*it);
  }
  return widths;
}

int widest_width() noexcept {
  for (const int w : kLadder) {
    if (width_available(w)) return w;
  }
  return 32;
}

WidthChoice dispatch_width(int requested, Diagnostics* diag,
                           MetricsRegistry* metrics) {
  WidthChoice c;
  const int forced = force_width_env();
  c.forced = forced != 0;
  c.requested = c.forced ? forced : requested;
  int want = c.requested;
  if (want == 0) want = 32;  // the historical scalar default
  if (want == kWidthWidest) want = widest_width();
  if (width_available(want)) {
    c.word_bits = want;
  } else {
    // Step down the ladder to the widest available width not above the
    // request; an undersized or unknown request climbs back up to 32.
    int chosen = 32;
    for (const int w : kLadder) {
      if (w <= want && width_available(w)) {
        chosen = w;
        break;
      }
    }
    c.word_bits = chosen;
    c.fell_back = true;
    if (diag) {
      diag->report(DiagCode::WidthFallback, DiagSeverity::Warning,
                   std::to_string(want) + "-bit lanes",
                   std::string(c.forced ? "forced" : "requested") +
                       " width is unavailable on this build/CPU; dispatching " +
                       std::to_string(chosen) + "-bit lanes");
    }
    metric_add(metrics, "dispatch.width_fallbacks", 1);
  }
  if (metrics) {
    metrics->counter("dispatch.width")
        .set(static_cast<std::uint64_t>(c.word_bits));
  }
  return c;
}

}  // namespace udsim
