#include "core/vcd.h"

#include <ostream>

namespace udsim {

namespace {

/// Compact VCD identifier: base-94 over the printable range '!'..'~'.
std::string vcd_id(std::size_t k) {
  std::string s;
  do {
    s.push_back(static_cast<char>('!' + k % 94));
    k /= 94;
  } while (k);
  return s;
}

}  // namespace

VcdWriter::VcdWriter(std::ostream& os, const Netlist& nl, std::span<const NetId> nets)
    : os_(os) {
  if (nets.empty()) {
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) nets_.push_back(NetId{n});
  } else {
    nets_.assign(nets.begin(), nets.end());
  }
  ids_.reserve(nets_.size());
  last_.assign(nets_.size(), -1);

  os_ << "$timescale 1ns $end\n$scope module " << (nl.name().empty() ? "top" : nl.name())
      << " $end\n";
  for (std::size_t k = 0; k < nets_.size(); ++k) {
    ids_.push_back(vcd_id(k));
    // VCD identifiers forbid whitespace in names; netlist names are safe.
    os_ << "$var wire 1 " << ids_[k] << " " << nl.net(nets_[k]).name << " $end\n";
  }
  os_ << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::add_vector(const Waveform& wf) {
  for (int t = 0; t <= wf.depth(); ++t) {
    bool stamped = false;
    for (std::size_t k = 0; k < nets_.size(); ++k) {
      const int v = wf.at(nets_[k], t);
      if (v == last_[k]) continue;
      if (!stamped) {
        os_ << '#' << (time_ + static_cast<std::uint64_t>(t)) << '\n';
        stamped = true;
      }
      os_ << v << ids_[k] << '\n';
      last_[k] = v;
    }
  }
  time_ += static_cast<std::uint64_t>(wf.depth()) + 1;
}

void VcdWriter::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << '#' << time_ << '\n';
}

VcdWriter::~VcdWriter() { finish(); }

}  // namespace udsim
