#include "core/simulator.h"

#include <stdexcept>

#include "core/batch_runner.h"
#include "core/width_dispatch.h"
#include "ir/wide_word.h"
#include "eventsim/event_sim.h"
#include "native/native_sim.h"
#include "resilience/circuit_breaker.h"
#include "resilience/program_validator.h"
#include "lcc/lcc.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

namespace udsim {

std::string_view engine_name(EngineKind k) noexcept {
  switch (k) {
    case EngineKind::Event2:
      return "event-driven 2-value";
    case EngineKind::Event3:
      return "event-driven 3-value";
    case EngineKind::PCSet:
      return "PC-set method";
    case EngineKind::Parallel:
      return "parallel technique";
    case EngineKind::ParallelTrimmed:
      return "parallel + trimming";
    case EngineKind::ParallelPathTracing:
      return "parallel + path tracing";
    case EngineKind::ParallelCycleBreaking:
      return "parallel + cycle breaking";
    case EngineKind::ParallelCombined:
      return "parallel + path tracing + trimming";
    case EngineKind::ZeroDelayLcc:
      return "zero-delay LCC";
    case EngineKind::Native:
      return "native (dlopen)";
  }
  return "?";
}

namespace {

// The compiled engines all expose the same two hooks — the program and the
// arena bit holding each net's settled value — which is everything the
// batch layer needs. The interpreted event engines expose neither.
const Program* batch_program(const EventSim2&) { return nullptr; }
const Program* batch_program(const EventSim3&) { return nullptr; }
template <class W>
const Program* batch_program(const PCSetSim<W>& e) { return &e.compiled().program; }
template <class W>
const Program* batch_program(const ParallelSim<W>& e) { return &e.compiled().program; }
template <class W>
const Program* batch_program(const LccSim<W>& e) { return &e.program(); }

// Engine-specific per-pass constants for the batch layer's execution
// counters (only the parallel technique has trimming extras).
template <class Engine>
std::vector<std::pair<std::string, std::uint64_t>> batch_extras(const Engine& e) {
  if constexpr (requires { e.metric_extras(); }) {
    return e.metric_extras();
  } else {
    return {};
  }
}

template <class Engine>
std::vector<ArenaProbe> batch_probes(const Engine& e, const Netlist& nl) {
  std::vector<ArenaProbe> probes;
  if constexpr (requires { e.final_arena_probe(NetId{}); }) {
    probes.reserve(nl.primary_outputs().size());
    for (NetId po : nl.primary_outputs()) probes.push_back(e.final_arena_probe(po));
  }
  return probes;
}

/// Validate the flat stream shape and return the vector count.
std::size_t batch_vector_count(const Netlist& nl, std::span<const Bit> vectors) {
  const std::size_t pis = nl.primary_inputs().size();
  if (pis == 0) {
    if (!vectors.empty()) {
      throw std::invalid_argument("run_batch: stream of " +
                                  std::to_string(vectors.size()) +
                                  " bits given but the netlist has no primary inputs");
    }
    return 0;
  }
  if (vectors.size() % pis != 0) {
    throw std::invalid_argument(
        "run_batch: stream size " + std::to_string(vectors.size()) +
        " is not a multiple of the primary-input count " + std::to_string(pis));
  }
  return vectors.size() / pis;
}

template <class Engine>
class EngineAdapter final : public Simulator {
 public:
  template <class... Args>
  EngineAdapter(EngineKind kind, const Netlist& nl, Args&&... args)
      : kind_(kind), nl_(nl), engine_(nl, std::forward<Args>(args)...) {}

  void step(std::span<const Bit> pi_values) override { engine_.step(pi_values); }
  [[nodiscard]] EngineKind kind() const noexcept override { return kind_; }
  [[nodiscard]] const Netlist& netlist() const noexcept override { return nl_; }

  void set_metrics(MetricsRegistry* reg) noexcept override {
    metrics_ = reg;
    engine_.set_metrics(reg);
  }
  [[nodiscard]] MetricsRegistry* metrics() const noexcept override {
    return metrics_;
  }
  [[nodiscard]] Bit final_value(NetId n) const override {
    return value_of(engine_, n);
  }

  [[nodiscard]] const Program* compiled_program() const noexcept override {
    return batch_program(engine_);
  }
  [[nodiscard]] std::vector<ArenaProbe> output_probes() const override {
    return batch_probes(engine_, nl_);
  }
  [[nodiscard]] ProgramProfile program_profile(std::size_t top_k) const override {
    if constexpr (requires { attribution_for(engine_.compiled(), nl_); }) {
      return profile_program(engine_.compiled().program,
                             attribution_for(engine_.compiled(), nl_), top_k);
    } else {
      return {};  // interpreted event engines: no compiled program
    }
  }
  void set_cancel(const CancelToken* token) noexcept override {
    cancel_ = token;
    if constexpr (requires { engine_.set_cancel(token); }) {
      engine_.set_cancel(token);
    }
  }

  [[nodiscard]] BatchResult run_batch(std::span<const Bit> vectors,
                                      const BatchRunOptions& opts) const override {
    const std::size_t count = batch_vector_count(nl_, vectors);
    // Per-run overrides beat the instance-wide attachments (see
    // BatchRunOptions): a shared cached engine stays immutable while each
    // request brings its own token and registry.
    MetricsRegistry* metrics = opts.metrics ? opts.metrics : metrics_;
    const CancelToken* cancel = opts.cancel ? opts.cancel : cancel_;
    BatchResult r;
    r.outputs = nl_.primary_outputs();
    r.vectors = count;
    if (const Program* program = batch_program(engine_)) {
      run_compiled(*program, vectors, count, opts.num_threads, metrics, cancel, r);
    } else {
      // Interpreted fallback: single-threaded replay on a fresh engine, so
      // the reset-state semantics and this instance's state both hold.
      Engine fresh(nl_);
      fresh.set_metrics(metrics);
      if constexpr (requires { fresh.set_cancel(cancel); }) {
        fresh.set_cancel(cancel);
      }
      const std::size_t pis = nl_.primary_inputs().size();
      r.values.reserve(count * r.outputs.size());
      for (std::size_t v = 0; v < count; ++v) {
        fresh.step(vectors.subspan(v * pis, pis));
        for (NetId po : r.outputs) r.values.push_back(value_of(fresh, po));
      }
    }
    return r;
  }

 private:
  void run_compiled(const Program& program, std::span<const Bit> vectors,
                    std::size_t count, unsigned num_threads,
                    MetricsRegistry* metrics, const CancelToken* cancel,
                    BatchResult& r) const {
    const std::size_t pis = nl_.primary_inputs().size();
    if (program.input_words != pis) {
      throw std::logic_error("run_batch: program is not in scalar input mode");
    }
    std::vector<std::uint64_t> in(count * pis);
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = vectors[i] & 1;
    BatchRunner batch(program, batch_probes(engine_, nl_),
                      BatchOptions{.num_threads = num_threads,
                                   .metrics = metrics,
                                   .extra_pass_cost = batch_extras(engine_),
                                   .cancel = cancel});
    r.values = batch.run(in, count);
    r.threads = batch.num_threads();
  }

  static Bit value_of(const EventSim2& e, NetId n) { return e.value(n); }
  static Bit value_of(const EventSim3& e, NetId n) {
    return e.value(n) == Tri::One ? 1 : 0;
  }
  template <class W>
  static Bit value_of(const PCSetSim<W>& e, NetId n) { return e.final_value(n); }
  template <class W>
  static Bit value_of(const ParallelSim<W>& e, NetId n) { return e.final_value(n); }
  template <class W>
  static Bit value_of(const LccSim<W>& e, NetId n) { return e.value(n); }

  EngineKind kind_;
  const Netlist& nl_;
  Engine engine_;
  MetricsRegistry* metrics_ = nullptr;
  const CancelToken* cancel_ = nullptr;
};

ParallelOptions parallel_options(EngineKind kind) {
  ParallelOptions o;
  switch (kind) {
    case EngineKind::ParallelTrimmed:
      o.trimming = true;
      break;
    case EngineKind::ParallelPathTracing:
      o.shift_elim = ShiftElim::PathTracing;
      break;
    case EngineKind::ParallelCycleBreaking:
      o.shift_elim = ShiftElim::CycleBreaking;
      break;
    case EngineKind::ParallelCombined:
      o.trimming = true;
      o.shift_elim = ShiftElim::PathTracing;
      break;
    default:
      break;
  }
  return o;
}

/// Compiled-IR engines instantiated at one executor lane width. The engine
/// templates derive their compiler's word_bits from the Word type, so one
/// instantiation per supported width covers the whole ladder.
template <class Word>
std::unique_ptr<Simulator> make_ir_adapter(const Netlist& nl, EngineKind kind,
                                           const CompileGuard* guard) {
  switch (kind) {
    case EngineKind::PCSet:
      if (guard) {
        return std::make_unique<EngineAdapter<PCSetSim<Word>>>(
            kind, nl, std::span<const NetId>{}, *guard);
      }
      return std::make_unique<EngineAdapter<PCSetSim<Word>>>(kind, nl);
    case EngineKind::ZeroDelayLcc:
      if (guard) {
        return std::make_unique<EngineAdapter<LccSim<Word>>>(kind, nl, *guard);
      }
      return std::make_unique<EngineAdapter<LccSim<Word>>>(kind, nl);
    case EngineKind::Parallel:
    case EngineKind::ParallelTrimmed:
    case EngineKind::ParallelPathTracing:
    case EngineKind::ParallelCycleBreaking:
    case EngineKind::ParallelCombined:
      if (guard) {
        return std::make_unique<EngineAdapter<ParallelSim<Word>>>(
            kind, nl, parallel_options(kind), *guard);
      }
      return std::make_unique<EngineAdapter<ParallelSim<Word>>>(
          kind, nl, parallel_options(kind));
    default:
      throw NetlistError("make_simulator: unknown engine kind");
  }
}

std::unique_ptr<Simulator> make_simulator_impl(const Netlist& nl, EngineKind kind,
                                               const CompileGuard* guard,
                                               const NativeOptions* native = nullptr,
                                               int word_bits = 32) {
  std::unique_ptr<Simulator> sim = [&]() -> std::unique_ptr<Simulator> {
    const NativeOptions nopts = native ? *native : NativeOptions{};
    switch (kind) {
      // The interpreted event engines have no word arena; width is moot.
      case EngineKind::Event2:
        return std::make_unique<EngineAdapter<EventSim2>>(kind, nl);
      case EngineKind::Event3:
        return std::make_unique<EngineAdapter<EventSim3>>(kind, nl);
      case EngineKind::Native:
        if (word_bits > 64) {
          // Portable C has no 128/256-bit word; the fallback chain skips
          // Native at wide widths, so reaching here is a direct request.
          throw std::invalid_argument(
              "make_simulator: the native backend supports 32/64-bit words "
              "only (requested " + std::to_string(word_bits) + ")");
        }
        if (guard) {
          return std::make_unique<NativeSimulator>(nl, nopts, *guard);
        }
        return std::make_unique<NativeSimulator>(nl, nopts);
      default:
        switch (word_bits) {
          case 64:
            return make_ir_adapter<std::uint64_t>(nl, kind, guard);
#if UDSIM_HAS_W128
          case 128:
            return make_ir_adapter<u128>(nl, kind, guard);
#endif
          case 256:
            return make_ir_adapter<u256>(nl, kind, guard);
          default:
            return make_ir_adapter<std::uint32_t>(nl, kind, guard);
        }
    }
  }();
  // The registry that traced the compile also receives the runtime
  // counters, so one object tells the whole story of an engine's life;
  // likewise the token that could stop the compile keeps polling at runtime.
  if (guard && guard->metrics) sim->set_metrics(guard->metrics);
  if (guard && guard->cancel) sim->set_cancel(guard->cancel);
  return sim;
}

[[nodiscard]] std::string cost_summary(const CompileCostEstimate& c) {
  return std::to_string(c.arena_words) + " arena words, " +
         std::to_string(c.ops) + " ops, ~" + std::to_string(c.peak_bytes) +
         " peak bytes";
}

/// RAII verdict reporter for one native build attempt against the toolchain
/// circuit breaker: exactly one of success/failure is recorded, or — when
/// the attempt unwinds without a toolchain verdict (budget miss before the
/// compiler ran, a cancel propagating through) — record_abandoned() runs,
/// so a granted half-open probe slot can never leak.
class BreakerAttempt {
 public:
  explicit BreakerAttempt(CircuitBreaker* b) noexcept : b_(b) {}
  ~BreakerAttempt() {
    if (b_ != nullptr) b_->record_abandoned();
  }
  BreakerAttempt(const BreakerAttempt&) = delete;
  BreakerAttempt& operator=(const BreakerAttempt&) = delete;
  void success() { report(&CircuitBreaker::record_success); }
  void failure() { report(&CircuitBreaker::record_failure); }

 private:
  void report(void (CircuitBreaker::*fn)()) {
    if (b_ != nullptr) {
      CircuitBreaker* b = b_;
      b_ = nullptr;
      (b->*fn)();
    }
  }
  CircuitBreaker* b_;
};

}  // namespace

std::unique_ptr<Simulator> make_simulator(const Netlist& nl, EngineKind kind) {
  const WidthChoice w = dispatch_width();
  return make_simulator_impl(nl, kind, nullptr, nullptr, w.word_bits);
}

std::unique_ptr<Simulator> make_simulator(const Netlist& nl, EngineKind kind,
                                          const CompileGuard& guard) {
  const WidthChoice w = dispatch_width(0, guard.diag, guard.metrics);
  return make_simulator_impl(nl, kind, &guard, nullptr, w.word_bits);
}

std::unique_ptr<Simulator> make_simulator(const Netlist& nl, EngineKind kind,
                                          int word_bits) {
  const WidthChoice w = dispatch_width(word_bits);
  return make_simulator_impl(nl, kind, nullptr, nullptr, w.word_bits);
}

std::unique_ptr<Simulator> make_simulator(const Netlist& nl, EngineKind kind,
                                          const CompileGuard& guard,
                                          int word_bits) {
  const WidthChoice w = dispatch_width(word_bits, guard.diag, guard.metrics);
  return make_simulator_impl(nl, kind, &guard, nullptr, w.word_bits);
}

std::unique_ptr<Simulator> make_simulator_with_fallback(const Netlist& nl,
                                                        const SimPolicy& policy,
                                                        Diagnostics* diag) {
  if (policy.chain.empty()) {
    throw NetlistError("make_simulator_with_fallback: empty engine chain");
  }
  const CompileGuard guard{policy.budget, diag, policy.metrics, policy.cancel};
  // One dispatch for the whole chain: every candidate engine compiles at the
  // same resolved lane width, so a downgrade never changes the results.
  const WidthChoice width = dispatch_width(policy.word_bits, diag, policy.metrics);
  std::size_t downgrades = 0;
  std::size_t native_fallbacks = 0;
  for (std::size_t i = 0; i < policy.chain.size(); ++i) {
    const EngineKind kind = policy.chain[i];
    // Positional, not by value: a chain may list the same kind twice (e.g. a
    // user chain that already starts with Native plus a service-prepended
    // Native), and only the true tail position is terminal.
    const bool last = i + 1 == policy.chain.size();
    // The native backend emits portable C, which has no 128/256-bit word
    // type: at wide lane widths the chain skips it (recorded like any other
    // native fallback) rather than silently compiling at a narrower width.
    if (kind == EngineKind::Native && width.word_bits > 64) {
      if (diag) {
        diag->report(DiagCode::NativeFallback, DiagSeverity::Warning,
                     std::string(engine_name(kind)),
                     "native backend supports 32/64-bit words only; skipped at " +
                         std::to_string(width.word_bits) +
                         "-bit lanes; trying next engine");
      }
      metric_add(policy.metrics, "native.fallback", 1);
      ++native_fallbacks;
      if (last) {
        throw NetlistError(
            "make_simulator_with_fallback: only the native engine remains and "
            "it cannot run " + std::to_string(width.word_bits) + "-bit lanes");
      }
      continue;
    }
    // Cheap pre-check: reject on the structural prediction before paying
    // for the compile. The guarded compile re-checks the prediction and
    // the emitted program, so a too-optimistic prediction still cannot
    // smuggle an over-budget program through.
    if (is_compiled_engine(kind) && !policy.budget.unlimited()) {
      const CompileCostEstimate est =
          estimate_compile_cost(nl, kind, width.word_bits);
      if (const char* limit = budget_violation(policy.budget, est)) {
        if (diag) {
          diag->report(DiagCode::BudgetDowngrade, DiagSeverity::Warning,
                       std::string(engine_name(kind)),
                       "predicted " + std::string(limit) + " over budget (" +
                           cost_summary(est) + "); trying next engine");
        }
        ++downgrades;
        if (last) throw BudgetExceeded(est, policy.budget, limit, true);
        continue;
      }
    }
    // Circuit-breaker gate (DESIGN.md §5k): when the toolchain has been
    // failing consecutively, skip the native attempt *before* emitting C or
    // spawning a compiler subprocess — the whole point of the breaker is
    // that a persistently broken toolchain costs one counter bump per
    // request, not an emit+compile(+timeout) round trip per request.
    if (kind == EngineKind::Native && policy.native_breaker != nullptr &&
        !policy.native_breaker->allow()) {
      if (diag) {
        diag->report(DiagCode::NativeBreakerOpen, DiagSeverity::Warning,
                     std::string(engine_name(kind)),
                     "toolchain breaker '" +
                         policy.native_breaker->config().name + "' " +
                         policy.native_breaker->describe() +
                         "; skipping native untried");
      }
      metric_add(policy.metrics, "native.breaker_skipped", 1);
      ++native_fallbacks;
      if (last) {
        throw NetlistError(
            "make_simulator_with_fallback: only the native engine remains "
            "and its toolchain breaker is open");
      }
      continue;
    }
    // A native attempt compiles its base program *before* the external
    // toolchain can fail, so on failure the registry would describe a
    // program that never runs; snapshot compile.* and roll it back in the
    // NativeError handler so `exec.ops == compile.ops × passes` survives
    // the IR fallback (tests/fallback_chain_test.cpp).
    std::map<std::string, std::uint64_t> compile_before;
    if (kind == EngineKind::Native && policy.metrics) {
      compile_before = policy.metrics->snapshot();
    }
    BreakerAttempt breaker_attempt(
        kind == EngineKind::Native ? policy.native_breaker : nullptr);
    try {
      std::unique_ptr<Simulator> sim =
          make_simulator_impl(nl, kind, &guard, &policy.native, width.word_bits);
      // The toolchain cooperated end to end (emit → compile → dlopen →
      // dlsym): tell the breaker, so a half-open probe re-closes it.
      breaker_attempt.success();
      // Pre-flight validation (DESIGN.md §5f): a compiled program must pass
      // the structural checks before it is allowed near an arena — and the
      // check re-runs after every downgrade, since each downgrade built a
      // *different* program.
      if (policy.validate) {
        if (const Program* program = sim->compiled_program()) {
          const std::vector<ArenaProbe> probes = sim->output_probes();
          Diagnostics local;
          Diagnostics& vdiag = diag ? *diag : local;
          if (!validate_program(*program, ValidateOptions{.probes = probes},
                                vdiag)) {
            ++downgrades;
            if (last) {
              throw ProgramRejected(validate_program_brief(
                  *program, ValidateOptions{.probes = probes}));
            }
            continue;
          }
        }
      }
      if (diag) {
        diag->report(DiagCode::EngineSelected, DiagSeverity::Note,
                     std::string(engine_name(kind)),
                     downgrades != 0
                         ? "selected after " + std::to_string(downgrades) +
                               " budget downgrade(s)"
                         : native_fallbacks != 0 ? "selected after native fallback"
                                                 : "selected (first choice)");
      }
      return sim;
    } catch (const NativeError& e) {
      // An environment failure (no compiler, bad cache dir, corrupt object,
      // missing symbol), not a resource miss: record the structured stage
      // and continue down the IR chain.
      breaker_attempt.failure();
      if (diag) {
        diag->report(DiagCode::NativeFallback, DiagSeverity::Warning,
                     std::string(engine_name(kind)),
                     std::string(native_stage_name(e.stage())) +
                         " stage failed (" + e.what() + "); trying next engine");
      }
      metric_add(policy.metrics, "native.fallback", 1);
      if (policy.metrics) {
        // Roll back compile.* to the pre-attempt values: the native.* audit
        // trail stays (the build really happened), but the compile counters
        // must describe the program the selected engine actually runs.
        for (const auto& [name, value] : policy.metrics->snapshot()) {
          if (name.rfind("compile.", 0) != 0) continue;
          const auto it = compile_before.find(name);
          policy.metrics->counter(name).set(
              it == compile_before.end() ? 0 : it->second);
        }
      }
      ++native_fallbacks;
      if (last) throw;
    } catch (const BudgetExceeded& e) {
      if (diag) {
        diag->report(DiagCode::BudgetDowngrade, DiagSeverity::Warning,
                     std::string(engine_name(kind)),
                     std::string(e.predicted() ? "predicted " : "emitted ") +
                         e.limit() + " over budget (" + cost_summary(e.cost()) +
                         "); trying next engine");
      }
      ++downgrades;
      if (last) throw;
    }
  }
  throw NetlistError("make_simulator_with_fallback: no engine fits the budget");
}

SimPolicy native_sim_policy(NativeOptions opts) {
  SimPolicy policy;
  policy.chain.insert(policy.chain.begin(), EngineKind::Native);
  policy.native = std::move(opts);
  return policy;
}

}  // namespace udsim
