#include "core/simulator.h"

#include "eventsim/event_sim.h"
#include "lcc/lcc.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

namespace udsim {

std::string_view engine_name(EngineKind k) noexcept {
  switch (k) {
    case EngineKind::Event2:
      return "event-driven 2-value";
    case EngineKind::Event3:
      return "event-driven 3-value";
    case EngineKind::PCSet:
      return "PC-set method";
    case EngineKind::Parallel:
      return "parallel technique";
    case EngineKind::ParallelTrimmed:
      return "parallel + trimming";
    case EngineKind::ParallelPathTracing:
      return "parallel + path tracing";
    case EngineKind::ParallelCycleBreaking:
      return "parallel + cycle breaking";
    case EngineKind::ParallelCombined:
      return "parallel + path tracing + trimming";
    case EngineKind::ZeroDelayLcc:
      return "zero-delay LCC";
  }
  return "?";
}

namespace {

template <class Engine>
class EngineAdapter final : public Simulator {
 public:
  template <class... Args>
  EngineAdapter(EngineKind kind, const Netlist& nl, Args&&... args)
      : kind_(kind), engine_(nl, std::forward<Args>(args)...) {}

  void step(std::span<const Bit> pi_values) override { engine_.step(pi_values); }
  [[nodiscard]] EngineKind kind() const noexcept override { return kind_; }
  [[nodiscard]] Bit final_value(NetId n) const override {
    return value_of(engine_, n);
  }

 private:
  static Bit value_of(const EventSim2& e, NetId n) { return e.value(n); }
  static Bit value_of(const EventSim3& e, NetId n) {
    return e.value(n) == Tri::One ? 1 : 0;
  }
  static Bit value_of(const PCSetSim<>& e, NetId n) { return e.final_value(n); }
  static Bit value_of(const ParallelSim<>& e, NetId n) { return e.final_value(n); }
  static Bit value_of(const LccSim<>& e, NetId n) { return e.value(n); }

  EngineKind kind_;
  Engine engine_;
};

ParallelOptions parallel_options(EngineKind kind) {
  ParallelOptions o;
  switch (kind) {
    case EngineKind::ParallelTrimmed:
      o.trimming = true;
      break;
    case EngineKind::ParallelPathTracing:
      o.shift_elim = ShiftElim::PathTracing;
      break;
    case EngineKind::ParallelCycleBreaking:
      o.shift_elim = ShiftElim::CycleBreaking;
      break;
    case EngineKind::ParallelCombined:
      o.trimming = true;
      o.shift_elim = ShiftElim::PathTracing;
      break;
    default:
      break;
  }
  return o;
}

}  // namespace

std::unique_ptr<Simulator> make_simulator(const Netlist& nl, EngineKind kind) {
  switch (kind) {
    case EngineKind::Event2:
      return std::make_unique<EngineAdapter<EventSim2>>(kind, nl);
    case EngineKind::Event3:
      return std::make_unique<EngineAdapter<EventSim3>>(kind, nl);
    case EngineKind::PCSet:
      return std::make_unique<EngineAdapter<PCSetSim<>>>(kind, nl);
    case EngineKind::ZeroDelayLcc:
      return std::make_unique<EngineAdapter<LccSim<>>>(kind, nl);
    case EngineKind::Parallel:
    case EngineKind::ParallelTrimmed:
    case EngineKind::ParallelPathTracing:
    case EngineKind::ParallelCycleBreaking:
    case EngineKind::ParallelCombined:
      return std::make_unique<EngineAdapter<ParallelSim<>>>(kind, nl,
                                                            parallel_options(kind));
  }
  throw NetlistError("make_simulator: unknown engine kind");
}

}  // namespace udsim
