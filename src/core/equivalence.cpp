#include "core/equivalence.h"

#include <algorithm>
#include <bit>

#include "core/kernel_runner.h"
#include "harness/vectors.h"
#include "lcc/lcc.h"

namespace udsim {

namespace {

struct Interface {
  std::vector<NetId> inputs_a, inputs_b;    // matched by name, a's order
  std::vector<NetId> outputs_a, outputs_b;  // matched by name, a's order
};

std::string match_interface(const Netlist& a, const Netlist& b, Interface& io) {
  if (a.primary_inputs().size() != b.primary_inputs().size()) {
    return "primary input counts differ";
  }
  if (a.primary_outputs().size() != b.primary_outputs().size()) {
    return "primary output counts differ";
  }
  for (NetId pi : a.primary_inputs()) {
    const auto other = b.find_net(a.net(pi).name);
    if (!other || !b.net(*other).is_primary_input) {
      return "input '" + a.net(pi).name + "' missing in second netlist";
    }
    io.inputs_a.push_back(pi);
    io.inputs_b.push_back(*other);
  }
  for (NetId po : a.primary_outputs()) {
    const auto other = b.find_net(a.net(po).name);
    if (!other || !b.net(*other).is_primary_output) {
      return "output '" + a.net(po).name + "' missing in second netlist";
    }
    io.outputs_a.push_back(po);
    io.outputs_b.push_back(*other);
  }
  return {};
}

}  // namespace

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const EquivalenceOptions& opts) {
  EquivalenceResult result;
  Interface io;
  result.error = match_interface(a, b, io);
  if (!result.error.empty()) return result;

  Netlist la = a, lb = b;
  lower_wired_nets(la);
  lower_wired_nets(lb);
  const LccCompiled ca = compile_lcc(la, /*packed=*/true);
  const LccCompiled cb = compile_lcc(lb, /*packed=*/true);
  KernelRunner<std::uint32_t> ra(ca.program);
  KernelRunner<std::uint32_t> rb(cb.program);

  const std::size_t n_in = io.inputs_a.size();
  const bool exhaustive = n_in <= opts.exhaustive_limit;
  result.exhaustive = exhaustive;
  const std::uint64_t total =
      exhaustive ? (std::uint64_t{1} << n_in) : opts.random_vectors;

  // Drive both with identical packed words (32 vectors per pass). Input
  // order of `a` defines the lane assignment; `b`'s input words are
  // permuted into its own primary-input order.
  std::vector<std::size_t> b_pos(n_in);
  for (std::size_t i = 0; i < n_in; ++i) {
    const auto& pis = lb.primary_inputs();
    b_pos[i] = static_cast<std::size_t>(
        std::find(pis.begin(), pis.end(), io.inputs_b[i]) - pis.begin());
  }
  std::vector<std::uint32_t> in_a(n_in), in_b(n_in);
  RandomVectorSource src(n_in, opts.seed);
  std::uint64_t done = 0;
  while (done < total) {
    const unsigned lanes =
        static_cast<unsigned>(std::min<std::uint64_t>(32, total - done));
    for (std::size_t i = 0; i < n_in; ++i) in_a[i] = 0;
    for (unsigned lane = 0; lane < lanes; ++lane) {
      for (std::size_t i = 0; i < n_in; ++i) {
        const Bit bit = exhaustive
                            ? static_cast<Bit>(((done + lane) >> i) & 1u)
                            : static_cast<Bit>(0);
        in_a[i] |= static_cast<std::uint32_t>(bit) << lane;
      }
    }
    if (!exhaustive) {
      src.next_packed<std::uint32_t>(in_a, lanes);
    }
    for (std::size_t i = 0; i < n_in; ++i) in_b[b_pos[i]] = in_a[i];
    ra.run(in_a);
    rb.run(in_b);
    for (std::size_t o = 0; o < io.outputs_a.size(); ++o) {
      const std::uint32_t wa = ra.word(ca.net_var[io.outputs_a[o].value]);
      const std::uint32_t wb = rb.word(cb.net_var[io.outputs_b[o].value]);
      std::uint32_t diff = wa ^ wb;
      if (lanes < 32) diff &= (1u << lanes) - 1;
      if (diff) {
        const unsigned lane = static_cast<unsigned>(std::countr_zero(diff));
        Counterexample cex;
        cex.output = a.net(io.outputs_a[o]).name;
        cex.value_a = static_cast<Bit>((wa >> lane) & 1u);
        cex.value_b = static_cast<Bit>((wb >> lane) & 1u);
        for (std::size_t i = 0; i < n_in; ++i) {
          cex.inputs.push_back(static_cast<Bit>((in_a[i] >> lane) & 1u));
        }
        result.counterexample = std::move(cex);
        result.vectors_checked = done + lane + 1;
        return result;
      }
    }
    done += lanes;
  }
  result.equivalent = true;
  result.vectors_checked = done;
  return result;
}

}  // namespace udsim
