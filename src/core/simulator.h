// Unified simulator facade: one interface over every engine in the library,
// used by the examples and the cross-engine equivalence tests.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "netlist/netlist.h"

namespace udsim {

enum class EngineKind {
  Event2,               ///< interpreted event-driven, 2-valued (Fig. 19 col 2)
  Event3,               ///< interpreted event-driven, 3-valued (Fig. 19 col 1)
  PCSet,                ///< PC-set method (Fig. 19 col 3)
  Parallel,             ///< parallel technique, unoptimized (Fig. 19 col 4)
  ParallelTrimmed,      ///< + bit-field trimming (Fig. 20)
  ParallelPathTracing,  ///< + path-tracing shift elimination (Fig. 23)
  ParallelCycleBreaking,///< + cycle-breaking shift elimination (Fig. 23)
  ParallelCombined,     ///< path tracing + trimming (Fig. 24)
  ZeroDelayLcc,         ///< zero-delay compiled simulation (context exp.)
};

[[nodiscard]] std::string_view engine_name(EngineKind k) noexcept;

/// Result of a batch run: the settled value of every primary output for
/// every vector of the stream, in submission order.
struct BatchResult {
  std::vector<NetId> outputs;  ///< nets sampled (primary outputs, netlist order)
  std::vector<Bit> values;     ///< row-major: one row of outputs per vector
  std::size_t vectors = 0;
  unsigned threads = 1;        ///< worker threads the run was sharded across

  [[nodiscard]] Bit value(std::size_t vector, std::size_t output) const {
    return values.at(vector * outputs.size() + output);
  }
};

/// Minimal common surface: feed vectors, read settled values.
/// (Waveform-level access is engine-specific; use the engine classes
/// directly — ParallelSim::value_at, PCSetSim::value_at, OracleSim::step.)
class Simulator {
 public:
  virtual ~Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Simulate one input vector (one Bit per primary input).
  virtual void step(std::span<const Bit> pi_values) = 0;

  /// Settled value of a net after the last vector.
  [[nodiscard]] virtual Bit final_value(NetId n) const = 0;

  /// Batch-simulate a whole vector stream: `vectors` is row-major, one Bit
  /// per primary input per row (its size must be a multiple of the PI
  /// count). Always computed from the engine's initial (reset) state,
  /// independent of prior step() calls, and never disturbs this instance's
  /// incremental state. Compiled engines shard the stream across
  /// `num_threads` workers (0 = all hardware threads) with bit-identical
  /// results for every thread count; the interpreted event engines fall
  /// back to a single-threaded replay. See DESIGN.md §5c.
  [[nodiscard]] virtual BatchResult run_batch(std::span<const Bit> vectors,
                                              unsigned num_threads = 0) const = 0;

  /// The netlist this engine simulates.
  [[nodiscard]] virtual const Netlist& netlist() const noexcept = 0;

  [[nodiscard]] virtual EngineKind kind() const noexcept = 0;

 protected:
  Simulator() = default;
};

/// Construct an engine over `nl` (which must already have wired nets
/// lowered; see lower_wired_nets).
[[nodiscard]] std::unique_ptr<Simulator> make_simulator(const Netlist& nl,
                                                        EngineKind kind);

}  // namespace udsim
