// Unified simulator facade: one interface over every engine in the library,
// used by the examples and the cross-engine equivalence tests.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "analysis/compile_budget.h"
#include "core/engine_kind.h"
#include "core/kernel_runner.h"
#include "native/native_backend.h"
#include "netlist/diagnostics.h"
#include "netlist/netlist.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "resilience/cancel.h"

namespace udsim {

struct Program;
class CircuitBreaker;

/// Result of a batch run: the settled value of every primary output for
/// every vector of the stream, in submission order.
struct BatchResult {
  std::vector<NetId> outputs;  ///< nets sampled (primary outputs, netlist order)
  std::vector<Bit> values;     ///< row-major: one row of outputs per vector
  std::size_t vectors = 0;
  unsigned threads = 1;        ///< worker threads the run was sharded across

  [[nodiscard]] Bit value(std::size_t vector, std::size_t output) const {
    return values.at(vector * outputs.size() + output);
  }
};

/// Per-run knobs of Simulator::run_batch. `cancel` and `metrics` override
/// the instance-wide set_cancel / set_metrics attachments *for this run
/// only* (nullptr = inherit the attachment). The overrides are what lets a
/// long-lived service (src/service/) share one cached const Simulator
/// across concurrent sessions: each request brings its own deadline token
/// and registry without mutating the shared engine.
struct BatchRunOptions {
  unsigned num_threads = 0;            ///< worker threads; 0 = all hardware
  const CancelToken* cancel = nullptr; ///< per-run cancel/deadline override
  MetricsRegistry* metrics = nullptr;  ///< per-run counter sink override
};

/// Minimal common surface: feed vectors, read settled values.
/// (Waveform-level access is engine-specific; use the engine classes
/// directly — ParallelSim::value_at, PCSetSim::value_at, OracleSim::step.)
class Simulator {
 public:
  virtual ~Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Simulate one input vector (one Bit per primary input).
  virtual void step(std::span<const Bit> pi_values) = 0;

  /// Settled value of a net after the last vector.
  [[nodiscard]] virtual Bit final_value(NetId n) const = 0;

  /// Batch-simulate a whole vector stream: `vectors` is row-major, one Bit
  /// per primary input per row (its size must be a multiple of the PI
  /// count). Always computed from the engine's initial (reset) state,
  /// independent of prior step() calls, and never disturbs this instance's
  /// incremental state. Compiled engines shard the stream across
  /// `opts.num_threads` workers (0 = all hardware threads) with
  /// bit-identical results for every thread count; the interpreted event
  /// engines fall back to a single-threaded replay. See DESIGN.md §5c.
  ///
  /// Thread safety: run_batch touches no mutable instance state, so any
  /// number of concurrent run_batch calls may share one Simulator as long
  /// as nobody concurrently calls the mutating entry points (step,
  /// set_metrics, set_cancel) — the contract the service layer's
  /// compiled-program cache relies on.
  [[nodiscard]] virtual BatchResult run_batch(std::span<const Bit> vectors,
                                              const BatchRunOptions& opts) const = 0;

  /// Convenience overload with only a thread count.
  [[nodiscard]] BatchResult run_batch(std::span<const Bit> vectors,
                                      unsigned num_threads = 0) const {
    return run_batch(vectors, BatchRunOptions{.num_threads = num_threads});
  }

  /// The netlist this engine simulates.
  [[nodiscard]] virtual const Netlist& netlist() const noexcept = 0;

  [[nodiscard]] virtual EngineKind kind() const noexcept = 0;

  /// Attach (or detach, with nullptr) a metrics registry: every subsequent
  /// step() and run_batch() records exact runtime counters into it
  /// (sim.vectors, exec.*, event.*, batch.* — DESIGN.md §5e). Counters are
  /// atomic, so one registry may be shared across engines and across the
  /// worker shards of run_batch. Disabled (the default) costs one branch
  /// per vector pass. To also capture compile-phase trace spans, construct
  /// through a CompileGuard/SimPolicy with `metrics` set — the engine then
  /// adopts that registry automatically.
  virtual void set_metrics(MetricsRegistry* reg) noexcept = 0;
  [[nodiscard]] virtual MetricsRegistry* metrics() const noexcept = 0;

  /// The straight-line program a compiled engine executes, or nullptr for
  /// the interpreted event engines. Lets engine-agnostic layers (the
  /// resilient batch facade, the pre-flight ProgramValidator) reach the
  /// program without knowing the engine type.
  [[nodiscard]] virtual const Program* compiled_program() const noexcept = 0;

  /// Arena bits holding each primary output's settled value, in netlist
  /// primary-output order; empty for engines without a compiled program.
  [[nodiscard]] virtual std::vector<ArenaProbe> output_probes() const = 0;

  /// Exact structural cost profile of the compiled program (per-level cost
  /// breakdown, top-K hottest nets, shift-site ledger — obs/profiler.h).
  /// Disengaged (empty) profile for the interpreted event engines.
  [[nodiscard]] virtual ProgramProfile program_profile(
      std::size_t top_k = 8) const = 0;

  /// One JSON document composing the attached registry's counters,
  /// histograms and trace with the program profile (obs/report.h).
  [[nodiscard]] std::string report_to_json(const RunReportOptions& opts = {}) const;

  /// Attach (or detach, with nullptr) a cooperative cancel token: step()
  /// raises Cancelled between vectors once the token has stopped, and
  /// run_batch() propagates the token into its shard workers. One polled
  /// branch per vector pass; zero-cost (a dead branch) when detached.
  virtual void set_cancel(const CancelToken* token) noexcept = 0;

 protected:
  Simulator() = default;
};

/// Construct an engine over `nl` (which must already have wired nets
/// lowered; see lower_wired_nets). The executor lane width is resolved by
/// dispatch_width (core/width_dispatch.h): 32-bit by default, overridable
/// with UDSIM_FORCE_WIDTH.
[[nodiscard]] std::unique_ptr<Simulator> make_simulator(const Netlist& nl,
                                                        EngineKind kind);

/// Guarded variant: compiled engines throw BudgetExceeded when their
/// predicted or emitted cost crosses `guard.budget`, and record compile
/// diagnostics into `guard.diag`.
[[nodiscard]] std::unique_ptr<Simulator> make_simulator(const Netlist& nl,
                                                        EngineKind kind,
                                                        const CompileGuard& guard);

/// Explicit lane-width variants: `word_bits` is 0 (the 32-bit default),
/// kWidthWidest, or one of 32/64/128/256; an unavailable width steps down
/// the dispatch ladder (guarded variant: recorded as a WidthFallback
/// diagnostic in guard.diag). EngineKind::Native rejects widths above 64.
[[nodiscard]] std::unique_ptr<Simulator> make_simulator(const Netlist& nl,
                                                        EngineKind kind,
                                                        int word_bits);
[[nodiscard]] std::unique_ptr<Simulator> make_simulator(const Netlist& nl,
                                                        EngineKind kind,
                                                        const CompileGuard& guard,
                                                        int word_bits);

/// Engine-selection policy for make_simulator_with_fallback: candidate
/// engines in preference order, each gated by the same compile budget.
struct SimPolicy {
  /// Walked front to back; the first engine whose predicted *and* emitted
  /// cost fits `budget` wins. The default chain ends in the interpreted
  /// event-driven engine, which compiles nothing and always fits.
  std::vector<EngineKind> chain{
      EngineKind::ParallelCombined, EngineKind::ParallelTrimmed,
      EngineKind::PCSet, EngineKind::ZeroDelayLcc, EngineKind::Event2};
  CompileBudget budget{};              ///< unlimited by default
  MetricsRegistry* metrics = nullptr;  ///< compile spans + runtime counters
  /// Cooperative stop, honored at compile-phase boundaries during
  /// construction and attached to the built engine for runtime polling.
  const CancelToken* cancel = nullptr;
  /// Run the ProgramValidator pre-flight pass over every compiled engine
  /// the chain builds (including after each downgrade); a rejected program
  /// is treated like a budget miss — diagnosed, then the next engine tried.
  bool validate = true;
  /// Options for any EngineKind::Native entry in the chain (compiler, cache
  /// directory, ...). A native pipeline failure (emit/compile/dlopen) is
  /// recorded as DiagCode::NativeFallback plus a `native.fallback` counter
  /// and the walk continues with the IR engines — native is never allowed
  /// to be silently absent.
  NativeOptions native{};
  /// Executor lane width request, resolved once for the whole chain by
  /// dispatch_width (0 = the 32-bit default, kWidthWidest = widest
  /// available, or 32/64/128/256; UDSIM_FORCE_WIDTH overrides). Native
  /// entries are skipped — with a NativeFallback diagnostic — when the
  /// resolved width exceeds 64 bits.
  int word_bits = 0;
  /// Optional circuit breaker guarding the external toolchain
  /// (resilience/circuit_breaker.h). When set, a Native chain entry first
  /// asks `allow()`: an open breaker skips native immediately — structured
  /// DiagCode::NativeBreakerOpen plus a `native.breaker_skipped` counter,
  /// no emit, no compiler subprocess — and every attempted native build
  /// reports record_success/record_failure so consecutive toolchain
  /// failures trip the breaker for the whole service (DESIGN.md §5k).
  CircuitBreaker* native_breaker = nullptr;
};

/// Walk `policy.chain`, skipping engines whose compile cost exceeds
/// `policy.budget`, and return the first engine that fits. Every downgrade
/// is recorded in `diag` (DiagCode::BudgetDowngrade, with the predicted
/// cost and the limit crossed) and the winner as DiagCode::EngineSelected,
/// so callers can see which engine ran and why. Throws BudgetExceeded when
/// no engine in the chain fits.
[[nodiscard]] std::unique_ptr<Simulator> make_simulator_with_fallback(
    const Netlist& nl, const SimPolicy& policy = {}, Diagnostics* diag = nullptr);

/// The default SimPolicy with EngineKind::Native prepended as the preferred
/// engine: native machine code when the toolchain cooperates, the IR chain
/// (ParallelCombined → ... → Event2) otherwise, with the switch recorded as
/// a NativeFallback diagnostic. See DESIGN.md §5h.
[[nodiscard]] SimPolicy native_sim_policy(NativeOptions opts = {});

}  // namespace udsim
