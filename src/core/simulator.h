// Unified simulator facade: one interface over every engine in the library,
// used by the examples and the cross-engine equivalence tests.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "netlist/netlist.h"

namespace udsim {

enum class EngineKind {
  Event2,               ///< interpreted event-driven, 2-valued (Fig. 19 col 2)
  Event3,               ///< interpreted event-driven, 3-valued (Fig. 19 col 1)
  PCSet,                ///< PC-set method (Fig. 19 col 3)
  Parallel,             ///< parallel technique, unoptimized (Fig. 19 col 4)
  ParallelTrimmed,      ///< + bit-field trimming (Fig. 20)
  ParallelPathTracing,  ///< + path-tracing shift elimination (Fig. 23)
  ParallelCycleBreaking,///< + cycle-breaking shift elimination (Fig. 23)
  ParallelCombined,     ///< path tracing + trimming (Fig. 24)
  ZeroDelayLcc,         ///< zero-delay compiled simulation (context exp.)
};

[[nodiscard]] std::string_view engine_name(EngineKind k) noexcept;

/// Minimal common surface: feed vectors, read settled values.
/// (Waveform-level access is engine-specific; use the engine classes
/// directly — ParallelSim::value_at, PCSetSim::value_at, OracleSim::step.)
class Simulator {
 public:
  virtual ~Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Simulate one input vector (one Bit per primary input).
  virtual void step(std::span<const Bit> pi_values) = 0;

  /// Settled value of a net after the last vector.
  [[nodiscard]] virtual Bit final_value(NetId n) const = 0;

  [[nodiscard]] virtual EngineKind kind() const noexcept = 0;

 protected:
  Simulator() = default;
};

/// Construct an engine over `nl` (which must already have wired nets
/// lowered; see lower_wired_nets).
[[nodiscard]] std::unique_ptr<Simulator> make_simulator(const Netlist& nl,
                                                        EngineKind kind);

}  // namespace udsim
