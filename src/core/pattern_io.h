// Text pattern files: the simple stimulus/response format a downstream user
// drives the simulators with.
//
//   # comment
//   inputs a b cin          (optional header; must match the netlist)
//   0101
//   1100
//
// One line per vector, one character ('0'/'1') per primary input in header
// order (or the netlist's primary-input order when no header is given).
// Responses are written in the same style with an `outputs ...` header.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace udsim {

class PatternParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct PatternSet {
  std::size_t inputs = 0;
  std::vector<Bit> bits;  ///< row-major, `inputs` per row

  [[nodiscard]] std::size_t count() const { return inputs ? bits.size() / inputs : 0; }
  [[nodiscard]] std::span<const Bit> row(std::size_t k) const {
    return {bits.data() + k * inputs, inputs};
  }
};

/// Parse a pattern stream for `nl`. A header line `inputs n1 n2 ...`
/// reorders columns to the netlist's primary-input order; without one the
/// columns are taken positionally. Throws PatternParseError on bad input.
[[nodiscard]] PatternSet read_patterns(std::istream& in, const Netlist& nl);

/// Write patterns with an `inputs` header naming nl's primary inputs.
void write_patterns(std::ostream& out, const Netlist& nl, const PatternSet& patterns);

/// Write response rows (one Bit per primary output per vector, row-major)
/// with an `outputs` header.
void write_responses(std::ostream& out, const Netlist& nl,
                     std::span<const Bit> responses);

}  // namespace udsim
