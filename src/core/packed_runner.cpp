#include "core/packed_runner.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/kernel_runner.h"
#include "core/width_dispatch.h"
#include "ir/wide_word.h"
#include "lcc/lcc.h"

namespace udsim {

namespace {

template <class Word>
PackedRunResult run_packed_impl(const Netlist& nl, std::span<const Bit> vectors,
                                MetricsRegistry* metrics,
                                const CompileGuard* guard) {
  constexpr unsigned kLanes = sizeof(Word) * 8;
  const std::size_t pis = nl.primary_inputs().size();
  if (pis == 0 && !vectors.empty()) {
    throw std::invalid_argument(
        "run_packed_lcc: stream of " + std::to_string(vectors.size()) +
        " bits given but the netlist has no primary inputs");
  }
  if (pis != 0 && vectors.size() % pis != 0) {
    throw std::invalid_argument(
        "run_packed_lcc: stream size " + std::to_string(vectors.size()) +
        " is not a multiple of the primary-input count " + std::to_string(pis));
  }
  const std::size_t count = pis == 0 ? 0 : vectors.size() / pis;

  const LccCompiled compiled =
      guard ? compile_lcc(nl, /*packed=*/true, static_cast<int>(kLanes), *guard)
            : compile_lcc(nl, /*packed=*/true, static_cast<int>(kLanes));
  KernelRunner<Word> runner(compiled.program);
  if (metrics) runner.set_metrics(metrics);

  PackedRunResult r;
  r.outputs = nl.primary_outputs();
  r.vectors = count;
  r.word_bits = static_cast<int>(kLanes);
  r.values.reserve(count * r.outputs.size());

  std::vector<Word> in(pis);
  for (std::size_t base = 0; base < count; base += kLanes) {
    const std::size_t lanes = std::min<std::size_t>(kLanes, count - base);
    for (std::size_t i = 0; i < pis; ++i) in[i] = Word{0};
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::span<const Bit> row = vectors.subspan((base + lane) * pis, pis);
      for (std::size_t i = 0; i < pis; ++i) {
        if (row[i] & 1) {
          in[i] |= static_cast<Word>(std::uint64_t{1})
                   << static_cast<unsigned>(lane);
        }
      }
    }
    runner.run(in);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      for (const NetId po : r.outputs) {
        r.values.push_back(runner.bit(compiled.net_var[po.value],
                                      static_cast<unsigned>(lane)));
      }
    }
  }
  r.passes = runner.passes();
  if (metrics) {
    metrics->counter("packed.lanes").set(kLanes);
    metric_add(metrics, "packed.vectors", count);
  }
  return r;
}

}  // namespace

PackedRunResult run_packed_lcc(const Netlist& nl, std::span<const Bit> vectors,
                               int word_bits, MetricsRegistry* metrics,
                               const CompileGuard* guard) {
  const WidthChoice w =
      dispatch_width(word_bits, guard ? guard->diag : nullptr, metrics);
  switch (w.word_bits) {
    case 64:
      return run_packed_impl<std::uint64_t>(nl, vectors, metrics, guard);
#if UDSIM_HAS_W128
    case 128:
      return run_packed_impl<u128>(nl, vectors, metrics, guard);
#endif
    case 256:
      return run_packed_impl<u256>(nl, vectors, metrics, guard);
    default:
      return run_packed_impl<std::uint32_t>(nl, vectors, metrics, guard);
  }
}

}  // namespace udsim
