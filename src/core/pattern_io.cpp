#include "core/pattern_io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace udsim {

PatternSet read_patterns(std::istream& in, const Netlist& nl) {
  PatternSet ps;
  ps.inputs = nl.primary_inputs().size();
  // column -> primary-input position; identity unless a header reorders.
  std::vector<std::size_t> col_to_pi(ps.inputs);
  for (std::size_t i = 0; i < ps.inputs; ++i) col_to_pi[i] = i;

  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  std::size_t first_row_width = 0;  // width of the first vector row seen
  std::size_t first_row_line = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank
    if (first == "inputs") {
      if (saw_header || ps.count() != 0) {
        throw PatternParseError("line " + std::to_string(lineno) +
                                ": header must precede all vectors");
      }
      saw_header = true;
      std::vector<std::size_t> order;
      std::string name;
      while (ls >> name) {
        const auto net = nl.find_net(name);
        if (!net || !nl.net(*net).is_primary_input) {
          throw PatternParseError("line " + std::to_string(lineno) +
                                  ": unknown input '" + name + "'");
        }
        const auto& pis = nl.primary_inputs();
        for (std::size_t i = 0; i < pis.size(); ++i) {
          if (pis[i] == *net) order.push_back(i);
        }
      }
      if (order.size() != ps.inputs) {
        throw PatternParseError("line " + std::to_string(lineno) +
                                ": header must name every primary input once");
      }
      col_to_pi = std::move(order);
      continue;
    }
    // A vector row. A width change relative to earlier rows is diagnosed
    // specifically — it means the stream itself is inconsistent (a mangled
    // concatenation, say), which is a different defect than a stream whose
    // uniform width disagrees with the netlist.
    if (first_row_line != 0 && first.size() != first_row_width) {
      throw PatternParseError(
          "line " + std::to_string(lineno) + ": row width changed mid-stream (" +
          std::to_string(first.size()) + " bits here vs " +
          std::to_string(first_row_width) + " on line " +
          std::to_string(first_row_line) + ")");
    }
    if (first.size() != ps.inputs) {
      throw PatternParseError("line " + std::to_string(lineno) + ": expected " +
                              std::to_string(ps.inputs) + " bits, got " +
                              std::to_string(first.size()));
    }
    if (first_row_line == 0) {
      first_row_width = first.size();
      first_row_line = lineno;
    }
    std::string extra;
    if (ls >> extra) {
      throw PatternParseError("line " + std::to_string(lineno) +
                              ": trailing tokens after the vector");
    }
    const std::size_t base = ps.bits.size();
    ps.bits.resize(base + ps.inputs);
    for (std::size_t c = 0; c < ps.inputs; ++c) {
      const char ch = first[c];
      if (ch != '0' && ch != '1') {
        throw PatternParseError("line " + std::to_string(lineno) +
                                ": bits must be 0 or 1");
      }
      ps.bits[base + col_to_pi[c]] = static_cast<Bit>(ch - '0');
    }
  }
  return ps;
}

void write_patterns(std::ostream& out, const Netlist& nl, const PatternSet& patterns) {
  out << "inputs";
  for (NetId pi : nl.primary_inputs()) out << ' ' << nl.net(pi).name;
  out << '\n';
  for (std::size_t k = 0; k < patterns.count(); ++k) {
    const auto row = patterns.row(k);
    for (Bit b : row) out << static_cast<char>('0' + (b & 1));
    out << '\n';
  }
}

void write_responses(std::ostream& out, const Netlist& nl,
                     std::span<const Bit> responses) {
  const std::size_t width = nl.primary_outputs().size();
  out << "outputs";
  for (NetId po : nl.primary_outputs()) out << ' ' << nl.net(po).name;
  out << '\n';
  for (std::size_t k = 0; width && k + width <= responses.size(); k += width) {
    for (std::size_t o = 0; o < width; ++o) {
      out << static_cast<char>('0' + (responses[k + o] & 1));
    }
    out << '\n';
  }
}

}  // namespace udsim
