// Unit-delay waveforms: the value of every net at every time 0..depth for
// one input vector. This is the ground truth all engines are tested against.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "netlist/logic.h"
#include "netlist/netlist.h"

namespace udsim {

class Waveform {
 public:
  Waveform() = default;
  Waveform(std::size_t nets, int depth)
      : times_(static_cast<std::size_t>(depth) + 1),
        values_(nets * times_, 0) {}

  [[nodiscard]] int depth() const noexcept { return static_cast<int>(times_) - 1; }
  [[nodiscard]] std::size_t net_count() const noexcept {
    return times_ ? values_.size() / times_ : 0;
  }

  [[nodiscard]] Bit at(NetId n, int t) const {
    assert(t >= 0 && static_cast<std::size_t>(t) < times_);
    return values_[n.value * times_ + static_cast<std::size_t>(t)];
  }

  void set(NetId n, int t, Bit v) {
    assert(t >= 0 && static_cast<std::size_t>(t) < times_);
    values_[n.value * times_ + static_cast<std::size_t>(t)] = v;
  }

  /// Final (settled) value of the net for this vector.
  [[nodiscard]] Bit final_value(NetId n) const { return at(n, depth()); }

  /// Times t >= 1 at which the net's value differs from time t-1
  /// (the *actual* change times; always a subset of the PC-set — Lemma 1).
  [[nodiscard]] std::vector<int> change_times(NetId n) const {
    std::vector<int> out;
    for (int t = 1; t <= depth(); ++t) {
      if (at(n, t) != at(n, t - 1)) out.push_back(t);
    }
    return out;
  }

  /// Number of value changes after the first settle, i.e. whether the net
  /// glitched: more than one change means a hazard occurred on this vector.
  [[nodiscard]] std::size_t transition_count(NetId n) const {
    return change_times(n).size();
  }

  friend bool operator==(const Waveform&, const Waveform&) = default;

 private:
  std::size_t times_ = 0;
  std::vector<Bit> values_;
};

}  // namespace udsim
