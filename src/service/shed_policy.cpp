#include "service/shed_policy.h"

namespace udsim {

std::vector<ShedLevel> LoadShedPolicy::default_levels() {
  return {
      // L0: healthy — full chain, native allowed, uncapped threads.
      {.queue_fill = 0.0},
      // L1: half full — native's external-compiler cost is the first thing
      // to go, and batch shares shrink so more requests run concurrently.
      {.queue_fill = 0.50, .drop_native = true, .batch_threads = 2},
      // L2: three quarters — also skip the widest IR engines (the default
      // chain starts ParallelCombined, ParallelTrimmed; skipping 2 lands on
      // PCSet), single-threaded batches.
      {.queue_fill = 0.75, .drop_native = true, .chain_skip = 2,
       .batch_threads = 1},
      // L3: nearly full — compiling anything new is off the table; cached
      // programs still serve, everything else is a structured rejection.
      {.queue_fill = 0.90, .drop_native = true, .chain_skip = 2,
       .batch_threads = 1, .cache_only = true},
  };
}

std::size_t LoadShedPolicy::decide(std::size_t depth,
                                   std::size_t capacity) const noexcept {
  if (capacity == 0 || levels.empty()) return 0;
  const double fill =
      static_cast<double>(depth) / static_cast<double>(capacity);
  std::size_t winner = 0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (fill >= levels[i].queue_fill) winner = i;
  }
  return winner;
}

}  // namespace udsim
