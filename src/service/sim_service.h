// Long-lived in-process simulation service (DESIGN.md §5i).
//
// SimService turns the library's one-shot entry points into a served
// resource: it owns a fingerprint-keyed cache of compiled simulators
// (single-flight builds, byte-budgeted LRU), a bounded request queue with
// visible backpressure, and a small worker pool, and wraps every request in
// the robustness envelope the lower layers provide — admission control via
// CompileBudget, per-request deadlines via CancelToken (inherited by the
// queue wait, the compile phase and the batch run), bounded whole-run
// retry-with-backoff over the shard retry/quarantine machinery, and a
// load-shed ladder that degrades (drop native, step down the chain, shrink
// thread shares) before it rejects. The self-healing layer (DESIGN.md §5k)
// rides on top: a circuit breaker over the external toolchain, a
// poison-request quarantine for deterministically failing netlists, and a
// health() state machine that names which dependency is limping.
//
// The hard contract: every submitted request resolves exactly once, with
// one Outcome — Completed, Cancelled, DeadlineExpired, Rejected, QueueFull,
// Failed or ShutDown. Never a hang, never a silent drop, never a double
// completion. tests/service_soak_test.cpp holds this under N concurrent
// clients × mixed circuits × injected faults × random cancellations, and
// checks admitted results bit-identical to a direct run_batch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/compile_budget.h"
#include "core/simulator.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/rolling_window.h"
#include "resilience/cancel.h"
#include "resilience/circuit_breaker.h"
#include "resilience/fault_injection.h"
#include "resilience/resilient_run.h"
#include "service/poison_ledger.h"
#include "service/program_cache.h"
#include "service/request_queue.h"
#include "service/service_types.h"
#include "service/session.h"
#include "service/shed_policy.h"

namespace udsim {

/// Three-state service health, ordered by severity (Degraded and Unhealthy
/// both still answer health probes; Unhealthy warns that requests are being
/// — or are about to be — refused).
enum class HealthState : std::uint8_t { Healthy, Degraded, Unhealthy };

[[nodiscard]] std::string_view health_state_name(HealthState s) noexcept;

/// Live-telemetry knobs (DESIGN.md §5l). Telemetry is on by default — the
/// rolling window and request traces are a few relaxed atomics and one
/// small vector per request (the ablation bench bounds the overhead);
/// the JSONL event log engages only when given a path.
struct TelemetryConfig {
  /// Master switch: off = no trace ids, no rolling window, no event log
  /// (status_json() still reports counters and health).
  bool enabled = true;
  /// Rolling-window geometry for windowed outcome counts and latency
  /// percentiles (default: 60 × 1 s).
  RollingWindowConfig window{};
  /// SLO targets evaluated against the window in status_json().
  SloConfig slo{};
  /// When non-empty, one JSON line per request resolution is appended here
  /// (bounded queue + writer thread; overflow drops are counted, never
  /// block a worker).
  std::string event_log_path;
  std::size_t event_log_capacity = 1024;
  /// Flush each finished RequestTrace into the registry's trace buffer so
  /// the Perfetto export grows per-request lanes next to the thread lanes.
  bool trace_requests = true;
};

struct ServiceConfig {
  /// Request worker threads (each runs one request at a time; the batch
  /// phase of a request may fan out further, see `batch_threads`).
  unsigned workers = 2;
  /// Bounded queue capacity; a full queue is a structured QueueFull.
  std::size_t queue_capacity = 64;
  /// Compiled-program cache budget in resident bytes (0 = unbounded).
  std::size_t cache_budget_bytes = 0;
  /// Admission budget: a request none of whose chain engines fit is
  /// Rejected at submit() — before it consumes a queue slot.
  CompileBudget admission{};
  /// Engine preference chain (defaults to SimPolicy's chain). The shed
  /// ladder may skip its front under load.
  std::vector<EngineKind> chain = SimPolicy{}.chain;
  /// Allow EngineKind::Native at the chain front when the shed level
  /// permits (off by default: a service should opt into the external
  /// toolchain dependency).
  bool enable_native = false;
  NativeOptions native{};
  /// Circuit breaker over the external toolchain (DESIGN.md §5k): after
  /// `failure_threshold` consecutive toolchain failures the native engine
  /// is skipped untried (structured NativeBreakerOpen diagnostic, IR chain
  /// serves) until a cooldown probe succeeds. Only engaged with
  /// `enable_native`.
  CircuitBreakerConfig native_breaker{.name = "toolchain"};
  /// Poison-request quarantine: a netlist failing deterministically
  /// `strike_threshold` times is Rejected at submit() until its TTL lapses.
  PoisonLedgerConfig poison{};
  /// Default per-request batch worker threads (0 = all hardware threads);
  /// shed levels may cap it, SimRequest::batch_threads overrides it.
  unsigned batch_threads = 2;
  /// Per-shard retries before quarantine (the PR 4 layer inside one run).
  unsigned shard_retry_limit = 2;
  /// Whole-run re-attempts with backoff for transient failures
  /// (InjectedFault, bad_alloc, NativeError).
  RetryPolicy retry{};
  LoadShedPolicy shed{};
  /// Run the ProgramValidator over every compiled engine at build time.
  bool validate = true;
  /// Deterministic fault injection for the batch phase (tests/bench only).
  FaultInjector* inject = nullptr;
  /// Executor lane width request, resolved once at construction by
  /// dispatch_width (0 = the 32-bit default; kWidthWidest; 32/64/128/256;
  /// UDSIM_FORCE_WIDTH overrides). The resolved width keys the program
  /// cache and is compiled into every engine the service builds.
  int word_bits = 0;
  /// Request tracing, rolling-window SLOs and the JSONL event log.
  TelemetryConfig telemetry{};
};

class SimService {
 public:
  explicit SimService(ServiceConfig cfg = {});
  /// Destruction shuts down: cancels running requests, resolves queued
  /// ones as ShutDown, joins the workers. No ticket is left unresolved.
  ~SimService();
  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Register a client session; its id scopes per-client metrics.
  [[nodiscard]] SessionId open_session(std::string name = "");

  /// Enqueue one request. Always returns a ticket whose future resolves
  /// exactly once; structural refusals (bad shape, admission budget,
  /// backpressure, shut down) resolve immediately.
  [[nodiscard]] ServiceTicket submit(SessionId session, SimRequest req);

  /// Synchronous convenience: submit and wait.
  [[nodiscard]] SimResponse run(SessionId session, SimRequest req);

  /// Request cancellation of a submitted request (best effort: the request
  /// stops at its next poll boundary, resolving as Cancelled with a
  /// checkpoint when the batch phase had started on a compiled engine).
  /// Returns false when the id is unknown or already resolved.
  bool cancel(std::uint64_t request_id);

  /// Stop accepting work, cancel running requests, resolve queued ones as
  /// ShutDown, join workers. Idempotent; also run by the destructor.
  void shutdown();

  /// Service-wide registry (service.*, plus compile/exec counters of the
  /// engines built through the cache).
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Per-session report (counters + histograms as JSON), "{}" for an
  /// unknown session.
  [[nodiscard]] std::string session_report(SessionId session) const;

  struct Stats {
    std::size_t queue_depth = 0;
    std::size_t queue_capacity = 0;
    std::size_t active_requests = 0;  ///< submitted, not yet resolved
    std::size_t cache_entries = 0;
    std::size_t cache_bytes = 0;
    std::size_t shed_level = 0;  ///< level of the most recent schedule
    std::size_t quarantined = 0;  ///< poison-ledger quarantine population
    BreakerState breaker = BreakerState::Closed;  ///< toolchain breaker
  };
  [[nodiscard]] Stats stats() const;

  /// Aggregate health model (DESIGN.md §5k): the worst state over the
  /// service's components. Healthy = every dependency and resource is
  /// nominal; Degraded = serving, but on a fallback path or under pressure
  /// (toolchain breaker open/half-open, queue ≥ 50% full, shed ladder
  /// engaged, poison quarantine populated); Unhealthy = refusing or about
  /// to refuse work (queue ≥ 90% full, deepest shed level, shut down).
  struct HealthComponent {
    std::string name;
    HealthState state = HealthState::Healthy;
    std::string detail;
  };
  struct HealthReport {
    HealthState state = HealthState::Healthy;  ///< max over components
    std::vector<HealthComponent> components;
  };
  [[nodiscard]] HealthReport health() const;

  /// health() as JSON, shape:
  /// {"state":"degraded","components":[{"name":"toolchain.breaker",
  ///  "state":"degraded","detail":"open (...)"},...]}.
  [[nodiscard]] std::string health_json() const;

  /// One live status document composing stats(), health(), cumulative
  /// outcome counters, the rolling-window view with latency percentiles,
  /// the SLO evaluation and event-log accounting. Every number is emitted
  /// through the obs/json DOM (exact uint64), so the document round-trips
  /// through JsonValue::parse.
  [[nodiscard]] std::string status_json() const;

  /// Prometheus text exposition: every registry counter/histogram plus
  /// typed gauges for queue depth, breaker/health/shed state, quarantine
  /// population, windowed outcome counts, latency percentiles and the SLO
  /// view. Always passes validate_prometheus_text().
  [[nodiscard]] std::string prometheus_text() const;

  /// The rolling outcome/latency window, or nullptr when telemetry is off.
  [[nodiscard]] const RollingWindow* window() const noexcept {
    return window_.get();
  }
  /// The JSONL event log, or nullptr when no path was configured.
  [[nodiscard]] JsonlEventLog* event_log() noexcept { return events_.get(); }

  /// Which Outcome slots count as "good" for the SLO: everything except
  /// the service-side failures and refusals (Failed, QueueFull, Rejected,
  /// ShutDown). Client-initiated stops are not availability errors.
  [[nodiscard]] static std::vector<bool> good_outcome_slots();

 private:
  struct Pending {
    std::uint64_t id = 0;
    std::shared_ptr<ServiceSession> session;
    SimRequest req;
    std::promise<SimResponse> promise;
    std::atomic<bool> resolved{false};
    CancelToken token;
    std::chrono::steady_clock::time_point submitted;
    /// Lifecycle phases (single-writer: the submit thread until queued,
    /// then the worker that popped it — the queue is the hand-off edge).
    RequestTrace trace;
  };

  void worker_loop();
  void run_one(const std::shared_ptr<Pending>& p);
  /// Exactly-once resolution: first caller wins, records outcome counters
  /// and per-session metrics, erases the active entry, fulfills the future.
  void resolve(Pending& p, SimResponse&& resp);
  /// Render the one-line event-log JSON for a resolved request.
  [[nodiscard]] std::string event_line(const Pending& p,
                                       const SimResponse& resp,
                                       std::uint64_t latency_ns) const;

  ServiceConfig cfg_;
  mutable MetricsRegistry metrics_;  // internally thread-safe; const reads
  CircuitBreaker breaker_;  ///< toolchain; wired only with enable_native
  PoisonLedger poison_;
  ProgramCache cache_;
  std::unique_ptr<RollingWindow> window_;   ///< null when telemetry is off
  std::unique_ptr<JsonlEventLog> events_;   ///< null without a log path
  BoundedQueue<std::shared_ptr<Pending>> queue_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_id_{0};

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Pending>> active_;
  std::map<SessionId, std::shared_ptr<ServiceSession>> sessions_;
  std::shared_ptr<ServiceSession> anonymous_session_;
  SessionId next_session_ = 0;
  bool joined_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace udsim
