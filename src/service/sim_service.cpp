#include "service/sim_service.h"

#include <string>
#include <utility>

#include "core/width_dispatch.h"
#include "native/native_backend.h"
#include "netlist/stats.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "resilience/program_validator.h"

namespace udsim {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

/// One rolling-window slot per Outcome, indexed by the enum's value.
constexpr std::size_t kOutcomeSlots =
    static_cast<std::size_t>(Outcome::ShutDown) + 1;

/// The cache disposition a finished trace implies (at most one of the three
/// cache phases is recorded per request).
[[nodiscard]] std::string_view cache_disposition(const RequestTrace& t) noexcept {
  for (const RequestTrace::Record& r : t.records()) {
    switch (r.phase) {
      case RequestPhase::CacheHit:   return "hit";
      case RequestPhase::CacheWait:  return "wait";
      case RequestPhase::CacheBuild: return "build";
      default: break;
    }
  }
  return "none";
}

}  // namespace

std::string_view health_state_name(HealthState s) noexcept {
  switch (s) {
    case HealthState::Healthy:
      return "healthy";
    case HealthState::Degraded:
      return "degraded";
    case HealthState::Unhealthy:
      return "unhealthy";
  }
  return "?";
}

SimService::SimService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      breaker_(cfg_.native_breaker, &metrics_),
      poison_(cfg_.poison, &metrics_),
      cache_(cfg_.cache_budget_bytes, &metrics_),
      queue_(cfg_.queue_capacity, &metrics_),
      anonymous_session_(std::make_shared<ServiceSession>(0, "anonymous")) {
  if (cfg_.chain.empty()) cfg_.chain = SimPolicy{}.chain;
  if (cfg_.workers == 0) cfg_.workers = 1;
  // Resolve the lane width once for the service's lifetime: every cache key,
  // admission estimate and compiled engine then agrees on the width (the
  // dispatch records it in the service registry's dispatch.width gauge).
  cfg_.word_bits = dispatch_width(cfg_.word_bits, nullptr, &metrics_).word_bits;
  if (cfg_.telemetry.enabled) {
    window_ =
        std::make_unique<RollingWindow>(cfg_.telemetry.window, kOutcomeSlots);
    if (!cfg_.telemetry.event_log_path.empty()) {
      events_ = std::make_unique<JsonlEventLog>(
          EventLogConfig{cfg_.telemetry.event_log_path,
                         cfg_.telemetry.event_log_capacity},
          &metrics_);
    }
  }
  workers_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimService::~SimService() { shutdown(); }

void SimService::shutdown() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(mu_);
    // Running requests stop at their next poll boundary and resolve as
    // Cancelled (with a checkpoint when resumable); queued ones are drained
    // by the workers below and resolve as ShutDown.
    for (auto& [id, p] : active_) p->token.request_cancel();
  }
  queue_.close();
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(mu_);
    if (!joined_) {
      joined_ = true;
      to_join.swap(workers_);
    }
  }
  for (std::thread& w : to_join) w.join();
}

SessionId SimService::open_session(std::string name) {
  std::lock_guard lock(mu_);
  const SessionId id = ++next_session_;
  if (name.empty()) name = "session-" + std::to_string(id);
  sessions_.emplace(id, std::make_shared<ServiceSession>(id, std::move(name)));
  return id;
}

std::string SimService::session_report(SessionId session) const {
  std::lock_guard lock(mu_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? std::string("{}")
                               : it->second->report_to_json();
}

SimService::Stats SimService::stats() const {
  Stats s;
  s.queue_depth = queue_.depth();
  s.queue_capacity = queue_.capacity();
  s.cache_entries = cache_.size();
  s.cache_bytes = cache_.bytes();
  {
    std::lock_guard lock(mu_);
    s.active_requests = active_.size();
  }
  s.shed_level = metrics_.counter("service.shed.level").value();
  s.quarantined = poison_.quarantined();
  s.breaker = breaker_.state();
  return s;
}

SimService::HealthReport SimService::health() const {
  HealthReport r;
  const auto component = [&](std::string name, HealthState state,
                             std::string detail) {
    if (state > r.state) r.state = state;
    r.components.push_back(
        {std::move(name), state, std::move(detail)});
  };

  if (stopping_.load(std::memory_order_acquire)) {
    component("lifecycle", HealthState::Unhealthy, "shut down");
  } else {
    component("lifecycle", HealthState::Healthy, "accepting requests");
  }

  if (cfg_.enable_native) {
    const BreakerState bs = breaker_.state();
    component("toolchain.breaker",
              bs == BreakerState::Closed ? HealthState::Healthy
                                         : HealthState::Degraded,
              "breaker '" + breaker_.config().name + "' " +
                  breaker_.describe());
  }

  const std::size_t depth = queue_.depth();
  const std::size_t cap = queue_.capacity();
  const double fill =
      cap == 0 ? 0.0 : static_cast<double>(depth) / static_cast<double>(cap);
  component("queue",
            fill >= 0.9   ? HealthState::Unhealthy
            : fill >= 0.5 ? HealthState::Degraded
                          : HealthState::Healthy,
            std::to_string(depth) + "/" + std::to_string(cap) + " queued");

  const std::size_t level = metrics_.counter("service.shed.level").value();
  const std::size_t deepest =
      cfg_.shed.levels.empty() ? 0 : cfg_.shed.levels.size() - 1;
  component("shed",
            level == 0                        ? HealthState::Healthy
            : deepest > 0 && level >= deepest ? HealthState::Unhealthy
                                              : HealthState::Degraded,
            "level " + std::to_string(level) + " of " +
                std::to_string(deepest));

  const std::size_t quarantined = poison_.quarantined();
  component("quarantine",
            quarantined == 0 ? HealthState::Healthy
            : cfg_.poison.capacity != 0 && quarantined >= cfg_.poison.capacity
                ? HealthState::Unhealthy
                : HealthState::Degraded,
            std::to_string(quarantined) + " fingerprint(s) quarantined");

  return r;
}

std::string SimService::health_json() const {
  const HealthReport r = health();
  JsonValue doc = JsonValue::make_object();
  doc.set("state",
          JsonValue::make_string(health_state_name(r.state)));
  JsonValue comps = JsonValue::make_array();
  for (const HealthComponent& c : r.components) {
    JsonValue jc = JsonValue::make_object();
    jc.set("name", JsonValue::make_string(c.name));
    jc.set("state", JsonValue::make_string(health_state_name(c.state)));
    jc.set("detail", JsonValue::make_string(c.detail));
    comps.array.push_back(std::move(jc));
  }
  doc.set("components", std::move(comps));
  return doc.dump(2);
}

std::vector<bool> SimService::good_outcome_slots() {
  std::vector<bool> good(kOutcomeSlots, false);
  good[static_cast<std::size_t>(Outcome::Completed)] = true;
  // Client-initiated stops end the request the way the client asked for;
  // charging them against availability would let one impatient client eat
  // the error budget.
  good[static_cast<std::size_t>(Outcome::Cancelled)] = true;
  good[static_cast<std::size_t>(Outcome::DeadlineExpired)] = true;
  return good;
}

std::string SimService::status_json() const {
  const Stats st = stats();
  const HealthReport hr = health();
  JsonValue doc = JsonValue::make_object();

  JsonValue svc = JsonValue::make_object();
  svc.set("queue_depth", JsonValue::make_uint(st.queue_depth));
  svc.set("queue_capacity", JsonValue::make_uint(st.queue_capacity));
  svc.set("active_requests", JsonValue::make_uint(st.active_requests));
  svc.set("cache_entries", JsonValue::make_uint(st.cache_entries));
  svc.set("cache_bytes", JsonValue::make_uint(st.cache_bytes));
  svc.set("shed_level", JsonValue::make_uint(st.shed_level));
  svc.set("quarantined", JsonValue::make_uint(st.quarantined));
  svc.set("breaker", JsonValue::make_string(breaker_state_name(st.breaker)));
  svc.set("word_bits", JsonValue::make_uint(
                           static_cast<std::uint64_t>(cfg_.word_bits)));
  svc.set("submitted",
          JsonValue::make_uint(metrics_.counter("service.submitted").value()));
  doc.set("service", std::move(svc));

  JsonValue health_doc = JsonValue::make_object();
  health_doc.set("state",
                 JsonValue::make_string(health_state_name(hr.state)));
  JsonValue comps = JsonValue::make_array();
  for (const HealthComponent& c : hr.components) {
    JsonValue jc = JsonValue::make_object();
    jc.set("name", JsonValue::make_string(c.name));
    jc.set("state", JsonValue::make_string(health_state_name(c.state)));
    jc.set("detail", JsonValue::make_string(c.detail));
    comps.array.push_back(std::move(jc));
  }
  health_doc.set("components", std::move(comps));
  doc.set("health", std::move(health_doc));

  // Cumulative exactly-once outcome counters: one key per Outcome, always
  // present (0 included) so consumers can sum without existence checks.
  JsonValue outcomes = JsonValue::make_object();
  for (std::size_t s = 0; s < kOutcomeSlots; ++s) {
    const Outcome o = static_cast<Outcome>(s);
    outcomes.set(
        std::string(outcome_name(o)),
        JsonValue::make_uint(
            metrics_
                .counter(std::string("service.outcome.") +
                         std::string(outcome_name(o)))
                .value()));
  }
  doc.set("outcomes", std::move(outcomes));

  if (window_ != nullptr) {
    const RollingWindow::Snapshot snap = window_->snapshot(trace_now_ns());
    JsonValue win = JsonValue::make_object();
    win.set("interval_ns", JsonValue::make_uint(snap.interval_ns));
    win.set("span_ns", JsonValue::make_uint(snap.span_ns));
    win.set("covered_intervals",
            JsonValue::make_uint(snap.covered_intervals));
    JsonValue wout = JsonValue::make_object();
    JsonValue tout = JsonValue::make_object();
    for (std::size_t s = 0; s < kOutcomeSlots; ++s) {
      const std::string name(outcome_name(static_cast<Outcome>(s)));
      wout.set(name, JsonValue::make_uint(snap.slot_counts[s]));
      tout.set(name, JsonValue::make_uint(snap.slot_totals[s]));
    }
    win.set("outcomes", std::move(wout));
    win.set("outcome_totals", std::move(tout));
    JsonValue lat = JsonValue::make_object();
    lat.set("count", JsonValue::make_uint(snap.latency.count));
    lat.set("sum_us", JsonValue::make_uint(snap.latency.sum));
    lat.set("max_us", JsonValue::make_uint(snap.latency.max));
    lat.set("p50_us", JsonValue::make_uint(
                          RollingWindow::percentile(snap.latency, 0.50)));
    lat.set("p95_us", JsonValue::make_uint(
                          RollingWindow::percentile(snap.latency, 0.95)));
    lat.set("p99_us", JsonValue::make_uint(
                          RollingWindow::percentile(snap.latency, 0.99)));
    win.set("latency", std::move(lat));
    doc.set("window", std::move(win));

    const SloView slo =
        evaluate_slo(snap, cfg_.telemetry.slo, good_outcome_slots());
    JsonValue js = JsonValue::make_object();
    js.set("total", JsonValue::make_uint(slo.total));
    js.set("good", JsonValue::make_uint(slo.good));
    js.set("errors", JsonValue::make_uint(slo.errors));
    js.set("availability", JsonValue::make_double(slo.availability));
    js.set("availability_target",
           JsonValue::make_double(cfg_.telemetry.slo.availability_target));
    js.set("error_budget", JsonValue::make_double(slo.error_budget));
    js.set("budget_consumed", JsonValue::make_double(slo.budget_consumed));
    js.set("availability_ok", JsonValue::make_bool(slo.availability_ok));
    js.set("latency_quantile",
           JsonValue::make_double(cfg_.telemetry.slo.latency_quantile));
    js.set("latency_q_us", JsonValue::make_uint(slo.latency_q_us));
    js.set("latency_target_us",
           JsonValue::make_uint(cfg_.telemetry.slo.latency_target_us));
    js.set("latency_ok", JsonValue::make_bool(slo.latency_ok));
    doc.set("slo", std::move(js));
  }

  JsonValue ev = JsonValue::make_object();
  ev.set("enabled", JsonValue::make_bool(events_ != nullptr));
  if (events_ != nullptr) {
    ev.set("path", JsonValue::make_string(events_->path()));
    ev.set("ok", JsonValue::make_bool(events_->ok()));
    ev.set("written", JsonValue::make_uint(events_->written()));
    ev.set("dropped", JsonValue::make_uint(events_->dropped()));
  }
  doc.set("events", std::move(ev));

  JsonValue tr = JsonValue::make_object();
  tr.set("buffered", JsonValue::make_uint(metrics_.trace_size()));
  tr.set("dropped",
         JsonValue::make_uint(metrics_.counter("trace.dropped").value()));
  doc.set("trace", std::move(tr));

  return doc.dump(2);
}

std::string SimService::prometheus_text() const {
  std::string out = render_prometheus(metrics_);
  PrometheusWriter w;
  const Stats st = stats();
  const HealthReport hr = health();

  w.type("udsim_service_queue_depth", "gauge", "Requests waiting in the queue");
  w.sample("udsim_service_queue_depth", std::uint64_t{st.queue_depth});
  w.type("udsim_service_queue_capacity", "gauge");
  w.sample("udsim_service_queue_capacity", std::uint64_t{st.queue_capacity});
  w.type("udsim_service_active_requests", "gauge",
         "Submitted but not yet resolved");
  w.sample("udsim_service_active_requests", std::uint64_t{st.active_requests});
  w.type("udsim_service_cache_entries", "gauge");
  w.sample("udsim_service_cache_entries", std::uint64_t{st.cache_entries});
  w.type("udsim_service_cache_bytes", "gauge");
  w.sample("udsim_service_cache_bytes", std::uint64_t{st.cache_bytes});
  w.type("udsim_service_shed_level_current", "gauge",
         "Load-shed ladder level of the most recent schedule");
  w.sample("udsim_service_shed_level_current", std::uint64_t{st.shed_level});
  w.type("udsim_service_quarantined_fingerprints", "gauge",
         "Poison-ledger quarantine population");
  w.sample("udsim_service_quarantined_fingerprints",
           std::uint64_t{st.quarantined});
  w.type("udsim_service_breaker_state", "gauge",
         "Toolchain breaker: 0=closed 1=open 2=half_open");
  w.sample("udsim_service_breaker_state",
           static_cast<std::uint64_t>(st.breaker));
  w.type("udsim_service_health_state", "gauge",
         "0=healthy 1=degraded 2=unhealthy");
  w.sample("udsim_service_health_state", static_cast<std::uint64_t>(hr.state));

  if (window_ != nullptr) {
    const RollingWindow::Snapshot snap = window_->snapshot(trace_now_ns());
    w.type("udsim_window_outcome_count", "gauge",
           "Requests resolved per outcome over the rolling window");
    w.type("udsim_window_outcome_total", "counter",
           "Requests resolved per outcome since start (exactly-once)");
    for (std::size_t s = 0; s < kOutcomeSlots; ++s) {
      const std::string name(outcome_name(static_cast<Outcome>(s)));
      w.sample("udsim_window_outcome_count", snap.slot_counts[s],
               {{"outcome", name}});
      w.sample("udsim_window_outcome_total", snap.slot_totals[s],
               {{"outcome", name}});
    }
    w.type("udsim_window_latency_us", "gauge",
           "Windowed request latency percentiles (microseconds)");
    w.sample("udsim_window_latency_us",
             RollingWindow::percentile(snap.latency, 0.50),
             {{"quantile", "0.5"}});
    w.sample("udsim_window_latency_us",
             RollingWindow::percentile(snap.latency, 0.95),
             {{"quantile", "0.95"}});
    w.sample("udsim_window_latency_us",
             RollingWindow::percentile(snap.latency, 0.99),
             {{"quantile", "0.99"}});

    const SloView slo =
        evaluate_slo(snap, cfg_.telemetry.slo, good_outcome_slots());
    w.type("udsim_slo_availability", "gauge",
           "Windowed good / total (1.0 when empty)");
    w.sample("udsim_slo_availability", slo.availability);
    w.type("udsim_slo_error_budget_consumed", "gauge",
           "Fraction of the windowed error budget consumed (>1 = blown)");
    w.sample("udsim_slo_error_budget_consumed", slo.budget_consumed);
    w.type("udsim_slo_availability_ok", "gauge");
    w.sample("udsim_slo_availability_ok",
             std::uint64_t{slo.availability_ok ? 1u : 0u});
    w.type("udsim_slo_latency_ok", "gauge");
    w.sample("udsim_slo_latency_ok", std::uint64_t{slo.latency_ok ? 1u : 0u});
  }

  if (events_ != nullptr) {
    w.type("udsim_events_written", "counter",
           "Event-log lines written to the JSONL sink");
    w.sample("udsim_events_written", events_->written());
    w.type("udsim_events_dropped", "counter",
           "Event-log lines dropped (queue full or sink unusable)");
    w.sample("udsim_events_dropped", events_->dropped());
  }

  out += w.take();
  return out;
}

bool SimService::cancel(std::uint64_t request_id) {
  std::lock_guard lock(mu_);
  const auto it = active_.find(request_id);
  if (it == active_.end()) return false;
  it->second->token.request_cancel();
  metrics_.counter("service.cancel.requests").add(1);
  return true;
}

void SimService::resolve(Pending& p, SimResponse&& resp) {
  if (p.resolved.exchange(true, std::memory_order_acq_rel)) return;
  const std::uint64_t latency_ns = elapsed_ns(p.submitted, Clock::now());
  resp.trace_id = p.trace.id();
  metrics_.histogram("service.latency.us").record(latency_ns / 1000);
  if (resp.run_ns != 0) {
    metrics_.histogram("service.run.us").record(resp.run_ns / 1000);
  }
  metrics_
      .counter(std::string("service.outcome.") +
               std::string(outcome_name(resp.outcome)))
      .add(1);
  // Telemetry rides the exactly-once edge: the window record, the event-log
  // line and the trace flush happen iff the outcome counter above was
  // bumped, which is what keeps windowed totals == outcome counters and
  // "one log line (or drop) per resolution" checkable invariants.
  p.trace.record(RequestPhase::Resolve, trace_now_ns(), 0,
                 static_cast<std::uint64_t>(resp.outcome));
  if (window_ != nullptr) {
    window_->record(static_cast<std::size_t>(resp.outcome), latency_ns / 1000,
                    trace_now_ns());
  }
  if (events_ != nullptr) {
    (void)events_->append(event_line(p, resp, latency_ns));
  }
  if (cfg_.telemetry.enabled && cfg_.telemetry.trace_requests) {
    p.trace.flush_to(metrics_);
  }
  if (p.session != nullptr) {
    p.session->record(resp.outcome, latency_ns, resp.queue_ns);
  }
  {
    std::lock_guard lock(mu_);
    active_.erase(p.id);
    metrics_.counter("service.active").set(active_.size());
  }
  p.promise.set_value(std::move(resp));
}

std::string SimService::event_line(const Pending& p, const SimResponse& resp,
                                   std::uint64_t latency_ns) const {
  JsonValue e = JsonValue::make_object();
  e.set("trace_id", JsonValue::make_uint(p.trace.id()));
  e.set("request_id", JsonValue::make_uint(p.id));
  e.set("session",
        JsonValue::make_uint(p.session != nullptr ? p.session->id() : 0));
  e.set("outcome", JsonValue::make_string(outcome_name(resp.outcome)));
  e.set("engine", JsonValue::make_string(engine_name(resp.engine)));
  e.set("width", JsonValue::make_uint(
                     static_cast<std::uint64_t>(cfg_.word_bits)));
  e.set("cache", JsonValue::make_string(cache_disposition(p.trace)));
  e.set("shed_level", JsonValue::make_uint(resp.shed_level));
  e.set("attempts", JsonValue::make_uint(resp.attempts));
  e.set("vectors_done", JsonValue::make_uint(resp.vectors_done));
  e.set("latency_ns", JsonValue::make_uint(latency_ns));
  e.set("queue_ns", JsonValue::make_uint(resp.queue_ns));
  e.set("run_ns", JsonValue::make_uint(resp.run_ns));
  JsonValue phases = JsonValue::make_object();
  for (const RequestPhase ph :
       {RequestPhase::Admission, RequestPhase::QueueWait,
        RequestPhase::ShedDecide, RequestPhase::CacheHit,
        RequestPhase::CacheWait, RequestPhase::CacheBuild,
        RequestPhase::RunAttempt, RequestPhase::Backoff}) {
    const std::uint64_t ns = p.trace.phase_ns(ph);
    if (ns != 0) {
      phases.set(std::string(request_phase_name(ph)),
                 JsonValue::make_uint(ns));
    }
  }
  e.set("phase_ns", std::move(phases));
  if (!resp.detail.empty()) {
    e.set("detail", JsonValue::make_string(resp.detail));
  }
  return e.dump(0);
}

ServiceTicket SimService::submit(SessionId session, SimRequest req) {
  auto p = std::make_shared<Pending>();
  p->id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  p->req = std::move(req);
  p->submitted = Clock::now();
  if (cfg_.telemetry.enabled) {
    p->trace = RequestTrace(mint_request_trace_id());
  }
  const std::uint64_t admission_start =
      cfg_.telemetry.enabled ? trace_now_ns() : 0;
  ServiceTicket ticket{p->id, p->promise.get_future()};
  metrics_.counter("service.submitted").add(1);
  {
    std::lock_guard lock(mu_);
    const auto it = sessions_.find(session);
    p->session = it != sessions_.end() ? it->second : anonymous_session_;
  }

  const auto refuse = [&](Outcome o, std::string detail) {
    // Refusals never reached the queue: the whole pre-queue life is one
    // Admission record (the success path records it just before the push,
    // so a queue-side refusal does not record twice).
    if (p->trace.records().empty()) {
      p->trace.record(RequestPhase::Admission, admission_start,
                      trace_now_ns() - admission_start);
    }
    SimResponse r;
    r.outcome = o;
    r.detail = std::move(detail);
    resolve(*p, std::move(r));
    return std::move(ticket);
  };

  if (stopping_.load(std::memory_order_acquire)) {
    return refuse(Outcome::ShutDown, "service is shut down");
  }
  if (p->req.netlist == nullptr) {
    return refuse(Outcome::Rejected, "request carries no netlist");
  }
  const std::size_t pis = p->req.netlist->primary_inputs().size();
  if (pis == 0 ? !p->req.vectors.empty()
               : p->req.vectors.size() % pis != 0) {
    return refuse(Outcome::Rejected,
                  "vector stream size " +
                      std::to_string(p->req.vectors.size()) +
                      " is not a multiple of the primary-input count " +
                      std::to_string(pis));
  }

  // Poison quarantine: a netlist that has already failed deterministically
  // enough times answers from the ledger — no queue slot, no worker, no
  // recompile. The empty() probe keeps the common case (nothing poisoned)
  // free of a fingerprint walk.
  if (!poison_.empty()) {
    if (std::optional<std::string> why =
            poison_.check(netlist_fingerprint(*p->req.netlist))) {
      return refuse(Outcome::Rejected, "poison quarantine: " + *why);
    }
  }

  // Admission control: at least one engine of the configured chain must fit
  // the compile budget, predicted from structure alone — a request that
  // cannot possibly compile is turned away before it costs a queue slot.
  if (!cfg_.admission.unlimited()) {
    std::vector<EngineKind> candidates = cfg_.chain;
    if (cfg_.enable_native) {
      candidates.insert(candidates.begin(), EngineKind::Native);
    }
    const char* last_violation = nullptr;
    bool fits = false;
    for (const EngineKind kind : candidates) {
      const CompileCostEstimate est =
          estimate_compile_cost(*p->req.netlist, kind, cfg_.word_bits);
      const char* v = budget_violation(cfg_.admission, est);
      if (v == nullptr) {
        fits = true;
        break;
      }
      last_violation = v;
    }
    if (!fits) {
      metrics_.counter("service.admission.rejected").add(1);
      return refuse(Outcome::Rejected,
                    std::string("admission: no chain engine fits the compile "
                                "budget (limit crossed: ") +
                        (last_violation != nullptr ? last_violation : "?") +
                        ")");
    }
  }

  // The deadline starts at submission, so queue wait and compile time are
  // charged against it (deadline inheritance across every phase).
  if (p->req.deadline.count() > 0) {
    p->token.set_deadline_after(p->req.deadline);
  }

  {
    std::lock_guard lock(mu_);
    active_.emplace(p->id, p);
    metrics_.counter("service.active").set(active_.size());
  }
  // Recorded before the push: once the request is in the queue a worker may
  // own it, and the trace is single-writer.
  p->trace.record(RequestPhase::Admission, admission_start,
                  trace_now_ns() - admission_start);
  switch (queue_.try_push(p)) {
    case BoundedQueue<std::shared_ptr<Pending>>::Push::Ok:
      break;
    case BoundedQueue<std::shared_ptr<Pending>>::Push::Full:
      metrics_.counter("service.backpressure.full").add(1);
      return refuse(Outcome::QueueFull,
                    "request queue at capacity (" +
                        std::to_string(queue_.capacity()) + ")");
    case BoundedQueue<std::shared_ptr<Pending>>::Push::Closed:
      return refuse(Outcome::ShutDown, "service is shut down");
  }
  return ticket;
}

SimResponse SimService::run(SessionId session, SimRequest req) {
  ServiceTicket t = submit(session, std::move(req));
  return t.result.get();
}

void SimService::worker_loop() {
  for (;;) {
    std::optional<std::shared_ptr<Pending>> item = queue_.pop();
    if (!item.has_value()) return;  // closed and drained
    const std::shared_ptr<Pending> p = std::move(*item);
    if (stopping_.load(std::memory_order_acquire)) {
      SimResponse r;
      r.outcome = Outcome::ShutDown;
      r.detail = "service shut down while the request was queued";
      r.queue_ns = elapsed_ns(p->submitted, Clock::now());
      resolve(*p, std::move(r));
      continue;
    }
    run_one(p);
  }
}

void SimService::run_one(const std::shared_ptr<Pending>& p) {
  // Pin the request id to this worker thread: every TraceSpan below —
  // including the compile-phase spans inside the cache build — tags itself
  // with the "request" arg. Shards on pool threads re-enter the scope via
  // BatchOptions::trace_id.
  RequestTraceScope trace_scope(p->trace.id());
  SimResponse resp;
  resp.queue_ns = elapsed_ns(p->submitted, Clock::now());
  metrics_.histogram("service.queue_wait.us").record(resp.queue_ns / 1000);
  p->trace.record(RequestPhase::QueueWait, trace_now_ns() - resp.queue_ns,
                  resp.queue_ns);

  // A deadline or cancel that landed while the request was queued: resolve
  // without touching the cache or the pool.
  if (const StopReason r = p->token.stop_reason(); r != StopReason::None) {
    resp.outcome = r == StopReason::Deadline ? Outcome::DeadlineExpired
                                             : Outcome::Cancelled;
    resp.detail = std::string(stop_reason_name(r)) + " while queued";
    resolve(*p, std::move(resp));
    return;
  }

  // Load-shed decision, from the queue state at schedule time.
  const std::uint64_t shed_start = trace_now_ns();
  const std::size_t level_i =
      cfg_.shed.decide(queue_.depth(), queue_.capacity());
  const ShedLevel& level = cfg_.shed.level(level_i);
  p->trace.record(RequestPhase::ShedDecide, shed_start,
                  trace_now_ns() - shed_start, level_i);
  resp.shed_level = level_i;
  metrics_.counter("service.shed.level").set(level_i);
  if (level_i > 0) metrics_.counter("service.shed.degraded").add(1);

  std::vector<EngineKind> chain = cfg_.chain;
  if (level.chain_skip > 0 && level.chain_skip < chain.size()) {
    chain.erase(chain.begin(),
                chain.begin() + static_cast<std::ptrdiff_t>(level.chain_skip));
  }
  if (cfg_.enable_native && !level.drop_native) {
    chain.insert(chain.begin(), EngineKind::Native);
  }

  const Netlist& nl = *p->req.netlist;
  const std::uint64_t nl_fp = netlist_fingerprint(nl);
  const ProgramCache::Key key{nl_fp, engine_chain_fingerprint(chain),
                              cfg_.word_bits};

  if (level.cache_only && !cache_.contains(key)) {
    metrics_.counter("service.shed.rejected").add(1);
    resp.outcome = Outcome::Rejected;
    resp.detail = "load-shed level " + std::to_string(level_i) +
                  ": compile admission closed (not in the program cache)";
    resolve(*p, std::move(resp));
    return;
  }

  ProgramCache::Acquired acq;
  const std::uint64_t cache_start = trace_now_ns();
  try {
    acq = cache_.acquire(
        key,
        [&]() {
          auto entry = std::make_shared<ProgramCache::Entry>();
          // The entry owns the netlist it compiles from: the simulator keeps
          // a reference into it, and the entry outlives the building request
          // (a later hit may come from a client whose own netlist is gone).
          entry->netlist = p->req.netlist;
          SimPolicy policy;
          policy.chain = chain;
          policy.budget = cfg_.admission;
          policy.metrics = &metrics_;
          policy.cancel = &p->token;
          policy.validate = cfg_.validate;
          policy.native = cfg_.native;
          // One breaker spans every request's native attempt: the toolchain
          // is a service-wide dependency, and an outage discovered by one
          // request should short-circuit all of them.
          policy.native_breaker = cfg_.enable_native ? &breaker_ : nullptr;
          policy.word_bits = cfg_.word_bits;  // resolved at construction
          entry->sim = make_simulator_with_fallback(nl, policy, &entry->diag);
          // The compile-time token belongs to the building request and dies
          // with it; detach so a cached simulator never polls freed memory
          // (each run supplies its own token via BatchRunOptions::cancel).
          entry->sim->set_cancel(nullptr);
          entry->engine = entry->sim->kind();
          const Program* prog = entry->sim->compiled_program();
          entry->bytes =
              prog != nullptr
                  ? measure_compile_cost(*prog, entry->engine, nl.net_count())
                        .peak_bytes
                  : estimate_compile_cost(nl, entry->engine, cfg_.word_bits)
                        .peak_bytes;
          return entry;
        },
        &p->token);
  } catch (const Cancelled& c) {
    p->trace.record(RequestPhase::CacheWait, cache_start,
                    trace_now_ns() - cache_start);
    resp.outcome = c.reason() == StopReason::Deadline
                       ? Outcome::DeadlineExpired
                       : Outcome::Cancelled;
    resp.detail = "stopped during compile (" + c.site() + ")";
    resolve(*p, std::move(resp));
    return;
  } catch (const BudgetExceeded& e) {
    p->trace.record(RequestPhase::CacheBuild, cache_start,
                    trace_now_ns() - cache_start);
    // The structural admission estimate passed but the real emission (or a
    // stricter prediction) did not: still a structured rejection.
    metrics_.counter("service.admission.rejected").add(1);
    resp.outcome = Outcome::Rejected;
    resp.detail = e.what();
    resolve(*p, std::move(resp));
    return;
  } catch (const std::exception& e) {
    p->trace.record(RequestPhase::CacheBuild, cache_start,
                    trace_now_ns() - cache_start);
    const FaultClass fc = classify_fault(e);
    metrics_
        .counter(std::string("service.fault.") +
                 std::string(fault_class_name(fc)))
        .add(1);
    resp.outcome = Outcome::Failed;
    resp.detail = std::string("compile failed: ") + e.what();
    // A whole-chain compile failure is a property of the netlist (toolchain
    // outages fall back inside the chain and never reach here): strike it.
    if (fc == FaultClass::Deterministic) {
      poison_.record_failure(nl_fp, resp.detail);
    }
    resolve(*p, std::move(resp));
    return;
  }
  p->trace.record(acq.hit ? (acq.waited ? RequestPhase::CacheWait
                                        : RequestPhase::CacheHit)
                          : RequestPhase::CacheBuild,
                  cache_start, trace_now_ns() - cache_start);
  resp.cache_hit = acq.hit;
  resp.engine = acq.entry->engine;

  // Effective batch-thread share: an explicit request value wins (resume
  // geometry must match the original run), otherwise the service default
  // capped by the shed level.
  unsigned threads = p->req.batch_threads;
  if (threads == 0) {
    threads = cfg_.batch_threads;
    if (level.batch_threads != 0 &&
        (threads == 0 || threads > level.batch_threads)) {
      threads = level.batch_threads;
    }
  }

  ResilientOptions ropts;
  ropts.num_threads = threads;
  ropts.cancel = &p->token;
  ropts.inject = cfg_.inject;
  ropts.retry_limit = cfg_.shard_retry_limit;
  ropts.metrics = &metrics_;
  ropts.resume = p->req.resume.get();
  // The program was validated once at build time (cfg_.validate); re-running
  // the validator per request would be pure overhead.
  ropts.validate = false;
  ropts.trace_id = p->trace.id();

  const Clock::time_point run_start = Clock::now();
  for (unsigned attempt = 1;; ++attempt) {
    resp.attempts = attempt;
    // Either stops the loop with an outcome (returns false) or sleeps the
    // backoff and asks for another attempt (returns true).
    const auto retry_or_fail = [&](const char* what) {
      if (attempt > cfg_.retry.max_retries) {
        resp.outcome = Outcome::Failed;
        resp.detail = std::string("retries exhausted: ") + what;
        return false;
      }
      metrics_.counter("service.retry.attempts").add(1);
      const std::uint64_t backoff_start = trace_now_ns();
      const StopReason r =
          backoff_sleep(cfg_.retry.backoff_for(attempt), &p->token);
      p->trace.record(RequestPhase::Backoff, backoff_start,
                      trace_now_ns() - backoff_start, attempt);
      if (r != StopReason::None) {
        resp.outcome = r == StopReason::Deadline ? Outcome::DeadlineExpired
                                                 : Outcome::Cancelled;
        resp.detail = std::string(stop_reason_name(r)) + " during backoff";
        return false;
      }
      return true;
    };
    const std::uint64_t attempt_start = trace_now_ns();
    const auto record_attempt = [&] {
      p->trace.record(RequestPhase::RunAttempt, attempt_start,
                      trace_now_ns() - attempt_start, attempt);
    };
    try {
      ResilientResult rr =
          run_batch_resilient(*acq.entry->sim, p->req.vectors, ropts);
      record_attempt();
      resp.batch = std::move(rr.batch);
      resp.checkpoint = std::move(rr.checkpoint);
      resp.resumable = rr.resumable && rr.status != RunStatus::Complete;
      resp.vectors_done = rr.vectors_done;
      resp.shard_retries = rr.retries;
      resp.quarantined = rr.quarantined;
      switch (rr.status) {
        case RunStatus::Complete:
          resp.outcome = Outcome::Completed;
          break;
        case RunStatus::Cancelled:
          resp.outcome = Outcome::Cancelled;
          resp.detail = "cancelled during the batch phase";
          break;
        case RunStatus::DeadlineExpired:
          resp.outcome = Outcome::DeadlineExpired;
          resp.detail = "deadline expired during the batch phase";
          break;
      }
      break;
    } catch (const Cancelled& c) {
      record_attempt();
      resp.outcome = c.reason() == StopReason::Deadline
                         ? Outcome::DeadlineExpired
                         : Outcome::Cancelled;
      resp.detail = "stopped at " + c.site();
      break;
    } catch (const std::exception& e) {
      record_attempt();
      // Explicit classification (DESIGN.md §5k): only failures a retry can
      // plausibly cure — injected faults, allocation failures, a timed-out
      // toolchain — consume whole-run attempts and their backoff sleeps.
      // Deterministic failures (geometry-mismatched resume, rejected
      // program, a compiler verdict, logic errors) fail immediately and
      // earn the netlist a poison-ledger strike.
      const FaultClass fc = classify_fault(e);
      metrics_
          .counter(std::string("service.fault.") +
                   std::string(fault_class_name(fc)))
          .add(1);
      if (fc == FaultClass::Deterministic) {
        resp.outcome = Outcome::Failed;
        resp.detail = e.what();
        poison_.record_failure(nl_fp, resp.detail);
        break;
      }
      if (!retry_or_fail(e.what())) break;
    }
  }
  resp.run_ns = elapsed_ns(run_start, Clock::now());
  if (resp.outcome == Outcome::Completed) poison_.record_success(nl_fp);
  resolve(*p, std::move(resp));
}

}  // namespace udsim
