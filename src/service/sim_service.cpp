#include "service/sim_service.h"

#include <string>
#include <utility>

#include "core/width_dispatch.h"
#include "native/native_backend.h"
#include "netlist/stats.h"
#include "obs/json.h"
#include "resilience/program_validator.h"

namespace udsim {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

std::string_view health_state_name(HealthState s) noexcept {
  switch (s) {
    case HealthState::Healthy:
      return "healthy";
    case HealthState::Degraded:
      return "degraded";
    case HealthState::Unhealthy:
      return "unhealthy";
  }
  return "?";
}

SimService::SimService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      breaker_(cfg_.native_breaker, &metrics_),
      poison_(cfg_.poison, &metrics_),
      cache_(cfg_.cache_budget_bytes, &metrics_),
      queue_(cfg_.queue_capacity, &metrics_),
      anonymous_session_(std::make_shared<ServiceSession>(0, "anonymous")) {
  if (cfg_.chain.empty()) cfg_.chain = SimPolicy{}.chain;
  if (cfg_.workers == 0) cfg_.workers = 1;
  // Resolve the lane width once for the service's lifetime: every cache key,
  // admission estimate and compiled engine then agrees on the width (the
  // dispatch records it in the service registry's dispatch.width gauge).
  cfg_.word_bits = dispatch_width(cfg_.word_bits, nullptr, &metrics_).word_bits;
  workers_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimService::~SimService() { shutdown(); }

void SimService::shutdown() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(mu_);
    // Running requests stop at their next poll boundary and resolve as
    // Cancelled (with a checkpoint when resumable); queued ones are drained
    // by the workers below and resolve as ShutDown.
    for (auto& [id, p] : active_) p->token.request_cancel();
  }
  queue_.close();
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(mu_);
    if (!joined_) {
      joined_ = true;
      to_join.swap(workers_);
    }
  }
  for (std::thread& w : to_join) w.join();
}

SessionId SimService::open_session(std::string name) {
  std::lock_guard lock(mu_);
  const SessionId id = ++next_session_;
  if (name.empty()) name = "session-" + std::to_string(id);
  sessions_.emplace(id, std::make_shared<ServiceSession>(id, std::move(name)));
  return id;
}

std::string SimService::session_report(SessionId session) const {
  std::lock_guard lock(mu_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? std::string("{}")
                               : it->second->report_to_json();
}

SimService::Stats SimService::stats() const {
  Stats s;
  s.queue_depth = queue_.depth();
  s.queue_capacity = queue_.capacity();
  s.cache_entries = cache_.size();
  s.cache_bytes = cache_.bytes();
  {
    std::lock_guard lock(mu_);
    s.active_requests = active_.size();
  }
  s.shed_level = metrics_.counter("service.shed.level").value();
  s.quarantined = poison_.quarantined();
  s.breaker = breaker_.state();
  return s;
}

SimService::HealthReport SimService::health() const {
  HealthReport r;
  const auto component = [&](std::string name, HealthState state,
                             std::string detail) {
    if (state > r.state) r.state = state;
    r.components.push_back(
        {std::move(name), state, std::move(detail)});
  };

  if (stopping_.load(std::memory_order_acquire)) {
    component("lifecycle", HealthState::Unhealthy, "shut down");
  } else {
    component("lifecycle", HealthState::Healthy, "accepting requests");
  }

  if (cfg_.enable_native) {
    const BreakerState bs = breaker_.state();
    component("toolchain.breaker",
              bs == BreakerState::Closed ? HealthState::Healthy
                                         : HealthState::Degraded,
              "breaker '" + breaker_.config().name + "' " +
                  breaker_.describe());
  }

  const std::size_t depth = queue_.depth();
  const std::size_t cap = queue_.capacity();
  const double fill =
      cap == 0 ? 0.0 : static_cast<double>(depth) / static_cast<double>(cap);
  component("queue",
            fill >= 0.9   ? HealthState::Unhealthy
            : fill >= 0.5 ? HealthState::Degraded
                          : HealthState::Healthy,
            std::to_string(depth) + "/" + std::to_string(cap) + " queued");

  const std::size_t level = metrics_.counter("service.shed.level").value();
  const std::size_t deepest =
      cfg_.shed.levels.empty() ? 0 : cfg_.shed.levels.size() - 1;
  component("shed",
            level == 0                        ? HealthState::Healthy
            : deepest > 0 && level >= deepest ? HealthState::Unhealthy
                                              : HealthState::Degraded,
            "level " + std::to_string(level) + " of " +
                std::to_string(deepest));

  const std::size_t quarantined = poison_.quarantined();
  component("quarantine",
            quarantined == 0 ? HealthState::Healthy
            : cfg_.poison.capacity != 0 && quarantined >= cfg_.poison.capacity
                ? HealthState::Unhealthy
                : HealthState::Degraded,
            std::to_string(quarantined) + " fingerprint(s) quarantined");

  return r;
}

std::string SimService::health_json() const {
  const HealthReport r = health();
  JsonValue doc = JsonValue::make_object();
  doc.set("state",
          JsonValue::make_string(health_state_name(r.state)));
  JsonValue comps = JsonValue::make_array();
  for (const HealthComponent& c : r.components) {
    JsonValue jc = JsonValue::make_object();
    jc.set("name", JsonValue::make_string(c.name));
    jc.set("state", JsonValue::make_string(health_state_name(c.state)));
    jc.set("detail", JsonValue::make_string(c.detail));
    comps.array.push_back(std::move(jc));
  }
  doc.set("components", std::move(comps));
  return doc.dump(2);
}

bool SimService::cancel(std::uint64_t request_id) {
  std::lock_guard lock(mu_);
  const auto it = active_.find(request_id);
  if (it == active_.end()) return false;
  it->second->token.request_cancel();
  metrics_.counter("service.cancel.requests").add(1);
  return true;
}

void SimService::resolve(Pending& p, SimResponse&& resp) {
  if (p.resolved.exchange(true, std::memory_order_acq_rel)) return;
  const std::uint64_t latency_ns = elapsed_ns(p.submitted, Clock::now());
  metrics_.histogram("service.latency.us").record(latency_ns / 1000);
  if (resp.run_ns != 0) {
    metrics_.histogram("service.run.us").record(resp.run_ns / 1000);
  }
  metrics_
      .counter(std::string("service.outcome.") +
               std::string(outcome_name(resp.outcome)))
      .add(1);
  if (p.session != nullptr) {
    p.session->record(resp.outcome, latency_ns, resp.queue_ns);
  }
  {
    std::lock_guard lock(mu_);
    active_.erase(p.id);
    metrics_.counter("service.active").set(active_.size());
  }
  p.promise.set_value(std::move(resp));
}

ServiceTicket SimService::submit(SessionId session, SimRequest req) {
  auto p = std::make_shared<Pending>();
  p->id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  p->req = std::move(req);
  p->submitted = Clock::now();
  ServiceTicket ticket{p->id, p->promise.get_future()};
  metrics_.counter("service.submitted").add(1);
  {
    std::lock_guard lock(mu_);
    const auto it = sessions_.find(session);
    p->session = it != sessions_.end() ? it->second : anonymous_session_;
  }

  const auto refuse = [&](Outcome o, std::string detail) {
    SimResponse r;
    r.outcome = o;
    r.detail = std::move(detail);
    resolve(*p, std::move(r));
    return std::move(ticket);
  };

  if (stopping_.load(std::memory_order_acquire)) {
    return refuse(Outcome::ShutDown, "service is shut down");
  }
  if (p->req.netlist == nullptr) {
    return refuse(Outcome::Rejected, "request carries no netlist");
  }
  const std::size_t pis = p->req.netlist->primary_inputs().size();
  if (pis == 0 ? !p->req.vectors.empty()
               : p->req.vectors.size() % pis != 0) {
    return refuse(Outcome::Rejected,
                  "vector stream size " +
                      std::to_string(p->req.vectors.size()) +
                      " is not a multiple of the primary-input count " +
                      std::to_string(pis));
  }

  // Poison quarantine: a netlist that has already failed deterministically
  // enough times answers from the ledger — no queue slot, no worker, no
  // recompile. The empty() probe keeps the common case (nothing poisoned)
  // free of a fingerprint walk.
  if (!poison_.empty()) {
    if (std::optional<std::string> why =
            poison_.check(netlist_fingerprint(*p->req.netlist))) {
      return refuse(Outcome::Rejected, "poison quarantine: " + *why);
    }
  }

  // Admission control: at least one engine of the configured chain must fit
  // the compile budget, predicted from structure alone — a request that
  // cannot possibly compile is turned away before it costs a queue slot.
  if (!cfg_.admission.unlimited()) {
    std::vector<EngineKind> candidates = cfg_.chain;
    if (cfg_.enable_native) {
      candidates.insert(candidates.begin(), EngineKind::Native);
    }
    const char* last_violation = nullptr;
    bool fits = false;
    for (const EngineKind kind : candidates) {
      const CompileCostEstimate est =
          estimate_compile_cost(*p->req.netlist, kind, cfg_.word_bits);
      const char* v = budget_violation(cfg_.admission, est);
      if (v == nullptr) {
        fits = true;
        break;
      }
      last_violation = v;
    }
    if (!fits) {
      metrics_.counter("service.admission.rejected").add(1);
      return refuse(Outcome::Rejected,
                    std::string("admission: no chain engine fits the compile "
                                "budget (limit crossed: ") +
                        (last_violation != nullptr ? last_violation : "?") +
                        ")");
    }
  }

  // The deadline starts at submission, so queue wait and compile time are
  // charged against it (deadline inheritance across every phase).
  if (p->req.deadline.count() > 0) {
    p->token.set_deadline_after(p->req.deadline);
  }

  {
    std::lock_guard lock(mu_);
    active_.emplace(p->id, p);
    metrics_.counter("service.active").set(active_.size());
  }
  switch (queue_.try_push(p)) {
    case BoundedQueue<std::shared_ptr<Pending>>::Push::Ok:
      break;
    case BoundedQueue<std::shared_ptr<Pending>>::Push::Full:
      metrics_.counter("service.backpressure.full").add(1);
      return refuse(Outcome::QueueFull,
                    "request queue at capacity (" +
                        std::to_string(queue_.capacity()) + ")");
    case BoundedQueue<std::shared_ptr<Pending>>::Push::Closed:
      return refuse(Outcome::ShutDown, "service is shut down");
  }
  return ticket;
}

SimResponse SimService::run(SessionId session, SimRequest req) {
  ServiceTicket t = submit(session, std::move(req));
  return t.result.get();
}

void SimService::worker_loop() {
  for (;;) {
    std::optional<std::shared_ptr<Pending>> item = queue_.pop();
    if (!item.has_value()) return;  // closed and drained
    const std::shared_ptr<Pending> p = std::move(*item);
    if (stopping_.load(std::memory_order_acquire)) {
      SimResponse r;
      r.outcome = Outcome::ShutDown;
      r.detail = "service shut down while the request was queued";
      r.queue_ns = elapsed_ns(p->submitted, Clock::now());
      resolve(*p, std::move(r));
      continue;
    }
    run_one(p);
  }
}

void SimService::run_one(const std::shared_ptr<Pending>& p) {
  SimResponse resp;
  resp.queue_ns = elapsed_ns(p->submitted, Clock::now());
  metrics_.histogram("service.queue_wait.us").record(resp.queue_ns / 1000);

  // A deadline or cancel that landed while the request was queued: resolve
  // without touching the cache or the pool.
  if (const StopReason r = p->token.stop_reason(); r != StopReason::None) {
    resp.outcome = r == StopReason::Deadline ? Outcome::DeadlineExpired
                                             : Outcome::Cancelled;
    resp.detail = std::string(stop_reason_name(r)) + " while queued";
    resolve(*p, std::move(resp));
    return;
  }

  // Load-shed decision, from the queue state at schedule time.
  const std::size_t level_i =
      cfg_.shed.decide(queue_.depth(), queue_.capacity());
  const ShedLevel& level = cfg_.shed.level(level_i);
  resp.shed_level = level_i;
  metrics_.counter("service.shed.level").set(level_i);
  if (level_i > 0) metrics_.counter("service.shed.degraded").add(1);

  std::vector<EngineKind> chain = cfg_.chain;
  if (level.chain_skip > 0 && level.chain_skip < chain.size()) {
    chain.erase(chain.begin(),
                chain.begin() + static_cast<std::ptrdiff_t>(level.chain_skip));
  }
  if (cfg_.enable_native && !level.drop_native) {
    chain.insert(chain.begin(), EngineKind::Native);
  }

  const Netlist& nl = *p->req.netlist;
  const std::uint64_t nl_fp = netlist_fingerprint(nl);
  const ProgramCache::Key key{nl_fp, engine_chain_fingerprint(chain),
                              cfg_.word_bits};

  if (level.cache_only && !cache_.contains(key)) {
    metrics_.counter("service.shed.rejected").add(1);
    resp.outcome = Outcome::Rejected;
    resp.detail = "load-shed level " + std::to_string(level_i) +
                  ": compile admission closed (not in the program cache)";
    resolve(*p, std::move(resp));
    return;
  }

  ProgramCache::Acquired acq;
  try {
    acq = cache_.acquire(
        key,
        [&]() {
          auto entry = std::make_shared<ProgramCache::Entry>();
          // The entry owns the netlist it compiles from: the simulator keeps
          // a reference into it, and the entry outlives the building request
          // (a later hit may come from a client whose own netlist is gone).
          entry->netlist = p->req.netlist;
          SimPolicy policy;
          policy.chain = chain;
          policy.budget = cfg_.admission;
          policy.metrics = &metrics_;
          policy.cancel = &p->token;
          policy.validate = cfg_.validate;
          policy.native = cfg_.native;
          // One breaker spans every request's native attempt: the toolchain
          // is a service-wide dependency, and an outage discovered by one
          // request should short-circuit all of them.
          policy.native_breaker = cfg_.enable_native ? &breaker_ : nullptr;
          policy.word_bits = cfg_.word_bits;  // resolved at construction
          entry->sim = make_simulator_with_fallback(nl, policy, &entry->diag);
          // The compile-time token belongs to the building request and dies
          // with it; detach so a cached simulator never polls freed memory
          // (each run supplies its own token via BatchRunOptions::cancel).
          entry->sim->set_cancel(nullptr);
          entry->engine = entry->sim->kind();
          const Program* prog = entry->sim->compiled_program();
          entry->bytes =
              prog != nullptr
                  ? measure_compile_cost(*prog, entry->engine, nl.net_count())
                        .peak_bytes
                  : estimate_compile_cost(nl, entry->engine, cfg_.word_bits)
                        .peak_bytes;
          return entry;
        },
        &p->token);
  } catch (const Cancelled& c) {
    resp.outcome = c.reason() == StopReason::Deadline
                       ? Outcome::DeadlineExpired
                       : Outcome::Cancelled;
    resp.detail = "stopped during compile (" + c.site() + ")";
    resolve(*p, std::move(resp));
    return;
  } catch (const BudgetExceeded& e) {
    // The structural admission estimate passed but the real emission (or a
    // stricter prediction) did not: still a structured rejection.
    metrics_.counter("service.admission.rejected").add(1);
    resp.outcome = Outcome::Rejected;
    resp.detail = e.what();
    resolve(*p, std::move(resp));
    return;
  } catch (const std::exception& e) {
    const FaultClass fc = classify_fault(e);
    metrics_
        .counter(std::string("service.fault.") +
                 std::string(fault_class_name(fc)))
        .add(1);
    resp.outcome = Outcome::Failed;
    resp.detail = std::string("compile failed: ") + e.what();
    // A whole-chain compile failure is a property of the netlist (toolchain
    // outages fall back inside the chain and never reach here): strike it.
    if (fc == FaultClass::Deterministic) {
      poison_.record_failure(nl_fp, resp.detail);
    }
    resolve(*p, std::move(resp));
    return;
  }
  resp.cache_hit = acq.hit;
  resp.engine = acq.entry->engine;

  // Effective batch-thread share: an explicit request value wins (resume
  // geometry must match the original run), otherwise the service default
  // capped by the shed level.
  unsigned threads = p->req.batch_threads;
  if (threads == 0) {
    threads = cfg_.batch_threads;
    if (level.batch_threads != 0 &&
        (threads == 0 || threads > level.batch_threads)) {
      threads = level.batch_threads;
    }
  }

  ResilientOptions ropts;
  ropts.num_threads = threads;
  ropts.cancel = &p->token;
  ropts.inject = cfg_.inject;
  ropts.retry_limit = cfg_.shard_retry_limit;
  ropts.metrics = &metrics_;
  ropts.resume = p->req.resume.get();
  // The program was validated once at build time (cfg_.validate); re-running
  // the validator per request would be pure overhead.
  ropts.validate = false;

  const Clock::time_point run_start = Clock::now();
  for (unsigned attempt = 1;; ++attempt) {
    resp.attempts = attempt;
    // Either stops the loop with an outcome (returns false) or sleeps the
    // backoff and asks for another attempt (returns true).
    const auto retry_or_fail = [&](const char* what) {
      if (attempt > cfg_.retry.max_retries) {
        resp.outcome = Outcome::Failed;
        resp.detail = std::string("retries exhausted: ") + what;
        return false;
      }
      metrics_.counter("service.retry.attempts").add(1);
      const StopReason r =
          backoff_sleep(cfg_.retry.backoff_for(attempt), &p->token);
      if (r != StopReason::None) {
        resp.outcome = r == StopReason::Deadline ? Outcome::DeadlineExpired
                                                 : Outcome::Cancelled;
        resp.detail = std::string(stop_reason_name(r)) + " during backoff";
        return false;
      }
      return true;
    };
    try {
      ResilientResult rr =
          run_batch_resilient(*acq.entry->sim, p->req.vectors, ropts);
      resp.batch = std::move(rr.batch);
      resp.checkpoint = std::move(rr.checkpoint);
      resp.resumable = rr.resumable && rr.status != RunStatus::Complete;
      resp.vectors_done = rr.vectors_done;
      resp.shard_retries = rr.retries;
      resp.quarantined = rr.quarantined;
      switch (rr.status) {
        case RunStatus::Complete:
          resp.outcome = Outcome::Completed;
          break;
        case RunStatus::Cancelled:
          resp.outcome = Outcome::Cancelled;
          resp.detail = "cancelled during the batch phase";
          break;
        case RunStatus::DeadlineExpired:
          resp.outcome = Outcome::DeadlineExpired;
          resp.detail = "deadline expired during the batch phase";
          break;
      }
      break;
    } catch (const Cancelled& c) {
      resp.outcome = c.reason() == StopReason::Deadline
                         ? Outcome::DeadlineExpired
                         : Outcome::Cancelled;
      resp.detail = "stopped at " + c.site();
      break;
    } catch (const std::exception& e) {
      // Explicit classification (DESIGN.md §5k): only failures a retry can
      // plausibly cure — injected faults, allocation failures, a timed-out
      // toolchain — consume whole-run attempts and their backoff sleeps.
      // Deterministic failures (geometry-mismatched resume, rejected
      // program, a compiler verdict, logic errors) fail immediately and
      // earn the netlist a poison-ledger strike.
      const FaultClass fc = classify_fault(e);
      metrics_
          .counter(std::string("service.fault.") +
                   std::string(fault_class_name(fc)))
          .add(1);
      if (fc == FaultClass::Deterministic) {
        resp.outcome = Outcome::Failed;
        resp.detail = e.what();
        poison_.record_failure(nl_fp, resp.detail);
        break;
      }
      if (!retry_or_fail(e.what())) break;
    }
  }
  resp.run_ns = elapsed_ns(run_start, Clock::now());
  if (resp.outcome == Outcome::Completed) poison_.record_success(nl_fp);
  resolve(*p, std::move(resp));
}

}  // namespace udsim
