// Bounded MPMC queue with explicit backpressure (DESIGN.md §5i).
//
// The service's admission edge: try_push never blocks — a full queue is a
// *visible* Full result the caller turns into a structured QueueFull
// response, not an unbounded buffer that converts overload into latency and
// memory growth. pop() blocks; close() wakes every popper, and items still
// queued at close time are drained (popped) rather than dropped so the
// owner can resolve them as ShutDown — the queue never loses a request.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/metrics.h"

namespace udsim {

template <class T>
class BoundedQueue {
 public:
  enum class Push : std::uint8_t { Ok, Full, Closed };

  /// `metrics` (optional) receives the `service.queue.depth` gauge and
  /// `service.queue.peak` high-water mark on every push/pop.
  explicit BoundedQueue(std::size_t capacity, MetricsRegistry* metrics = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity) {
    if (metrics != nullptr) {
      depth_gauge_ = &metrics->counter("service.queue.depth");
      peak_gauge_ = &metrics->counter("service.queue.peak");
    }
  }

  /// Non-blocking enqueue. Full and Closed are the caller's signal to
  /// resolve the request (QueueFull / ShutDown) instead of waiting.
  [[nodiscard]] Push try_push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return Push::Closed;
      if (items_.size() >= capacity_) return Push::Full;
      items_.push_back(std::move(item));
      publish_depth(items_.size());
    }
    cv_.notify_one();
    return Push::Ok;
  }

  /// Blocking dequeue. Returns nullopt only when the queue is closed *and*
  /// empty — items enqueued before close() are still delivered.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    publish_depth(items_.size());
    return item;
  }

  /// Stop accepting pushes and wake every blocked pop(). Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  void publish_depth(std::size_t depth) {
    if (depth_gauge_ != nullptr) depth_gauge_->set(depth);
    if (peak_gauge_ != nullptr) peak_gauge_->set_max(depth);
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
  MetricCounter* depth_gauge_ = nullptr;
  MetricCounter* peak_gauge_ = nullptr;
};

}  // namespace udsim
