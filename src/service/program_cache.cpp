#include "service/program_cache.h"

#include <chrono>
#include <utility>

namespace udsim {

std::uint64_t engine_chain_fingerprint(
    const std::vector<EngineKind>& chain) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(chain.size());
  for (const EngineKind k : chain) mix(static_cast<std::uint64_t>(k) + 1);
  return h;
}

ProgramCache::Acquired ProgramCache::acquire(const Key& key,
                                             const Builder& build,
                                             const CancelToken* cancel) {
  std::unique_lock lock(mu_);
  bool waited = false;
  for (;;) {
    auto it = slots_.find(key);
    if (it == slots_.end()) break;  // this caller becomes the builder
    if (it->second.ready != nullptr) {
      it->second.tick = ++tick_;
      metric_add(metrics_, "service.cache.hit", 1);
      return {it->second.ready, true, waited};
    }
    waited = true;
    // Someone else is building this key: wait, but keep honoring our own
    // deadline — a request must never be stuck behind a foreign compile
    // past its budget. The wait re-checks in slices rather than relying on
    // the builder to target our token.
    metric_add(metrics_, "service.cache.wait", 1);
    ready_cv_.wait_for(lock, std::chrono::milliseconds(20));
    if (cancel != nullptr) {
      const StopReason r = cancel->stop_reason();
      if (r != StopReason::None) {
        throw Cancelled(r, "service.cache.wait");
      }
    }
  }

  // Claim the build slot (ready == nullptr marks in-flight), then build
  // outside the lock so waiters and unrelated keys are not serialized
  // behind a compile.
  slots_.emplace(key, Slot{});
  metric_add(metrics_, "service.cache.miss", 1);
  lock.unlock();

  std::shared_ptr<Entry> built;
  try {
    metric_add(metrics_, "service.cache.build", 1);
    built = build();
  } catch (...) {
    std::lock_guard relock(mu_);
    slots_.erase(key);
    ready_cv_.notify_all();  // next waiter becomes the builder
    throw;
  }

  lock.lock();
  Slot& slot = slots_[key];
  slot.ready = built;
  slot.tick = ++tick_;
  bytes_ += built->bytes;
  evict_over_budget_locked(key);
  lock.unlock();
  ready_cv_.notify_all();
  return {std::move(built), false, waited};
}

bool ProgramCache::contains(const Key& key) const {
  std::lock_guard lock(mu_);
  const auto it = slots_.find(key);
  return it != slots_.end() && it->second.ready != nullptr;
}

std::size_t ProgramCache::size() const {
  std::lock_guard lock(mu_);
  return slots_.size();
}

std::size_t ProgramCache::bytes() const {
  std::lock_guard lock(mu_);
  return bytes_;
}

void ProgramCache::evict_over_budget_locked(const Key& keep) {
  if (budget_bytes_ == 0) return;
  while (bytes_ > budget_bytes_ && slots_.size() > 1) {
    auto oldest = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->second.ready == nullptr) continue;  // in-flight build
      if (it->first < keep || keep < it->first) {
        if (oldest == slots_.end() || it->second.tick < oldest->second.tick) {
          oldest = it;
        }
      }
    }
    if (oldest == slots_.end()) return;  // only the kept / building entries
    bytes_ -= oldest->second.ready->bytes;
    slots_.erase(oldest);
    metric_add(metrics_, "service.cache.evicted", 1);
  }
}

}  // namespace udsim
