// Per-client session state: an id, a label, and a private MetricsRegistry
// that accumulates this client's outcome counts and latency distributions
// independently of the service-wide registry (DESIGN.md §5i). The per-
// session registry is what SimService::session_report serializes — a
// client-scoped RunReport in the same JSON shape as the global one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "service/service_types.h"

namespace udsim {

class ServiceSession {
 public:
  ServiceSession(SessionId id, std::string name)
      : id_(id), name_(std::move(name)) {}

  [[nodiscard]] SessionId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Record one resolved request: bumps session.outcome.<name> and the
  /// latency / queue-wait histograms (µs). Thread-safe (atomic sinks).
  void record(Outcome outcome, std::uint64_t latency_ns,
              std::uint64_t queue_ns) {
    metrics_.counter(std::string("session.outcome.") +
                     std::string(outcome_name(outcome)))
        .add(1);
    metrics_.histogram("session.latency.us").record(latency_ns / 1000);
    metrics_.histogram("session.queue_wait.us").record(queue_ns / 1000);
  }

  /// Client-scoped report (counters + histograms), same JSON shape as
  /// MetricsRegistry::to_json.
  [[nodiscard]] std::string report_to_json() const {
    return metrics_.to_json();
  }

 private:
  SessionId id_;
  std::string name_;
  MetricsRegistry metrics_;
};

}  // namespace udsim
