#include "service/poison_ledger.h"

#include <utility>

namespace udsim {

bool PoisonLedger::expire_locked(std::map<std::uint64_t, Entry>::iterator it,
                                 Clock::time_point now) {
  if (now < it->second.expires_at) return false;
  if (it->second.quarantined) --quarantined_;
  entries_.erase(it);
  metric_add(metrics_, "service.poison.expired", 1);
  return true;
}

void PoisonLedger::evict_over_capacity_locked() {
  while (cfg_.capacity != 0 && entries_.size() > cfg_.capacity) {
    auto stalest = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      if (it->second.last_seen < stalest->second.last_seen) stalest = it;
    }
    if (stalest->second.quarantined) --quarantined_;
    entries_.erase(stalest);
  }
}

std::optional<std::string> PoisonLedger::check(std::uint64_t fingerprint) {
  std::lock_guard lock(mu_);
  const auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return std::nullopt;
  const Clock::time_point now = Clock::now();
  if (expire_locked(it, now)) return std::nullopt;
  if (!it->second.quarantined) return std::nullopt;
  it->second.last_seen = now;
  metric_add(metrics_, "service.poison.rejected", 1);
  return it->second.detail;
}

bool PoisonLedger::record_failure(std::uint64_t fingerprint,
                                  std::string_view detail) {
  std::lock_guard lock(mu_);
  const Clock::time_point now = Clock::now();
  auto it = entries_.find(fingerprint);
  if (it != entries_.end() && expire_locked(it, now)) it = entries_.end();
  if (it == entries_.end()) {
    it = entries_.emplace(fingerprint, Entry{}).first;
  }
  Entry& e = it->second;
  ++e.strikes;
  e.detail = std::string(detail);
  e.expires_at = now + cfg_.ttl;
  e.last_seen = now;
  const bool newly =
      !e.quarantined && e.strikes >= cfg_.strike_threshold;
  if (newly) {
    e.quarantined = true;
    ++quarantined_;
    metric_add(metrics_, "service.poison.quarantined", 1);
  }
  evict_over_capacity_locked();
  return newly;
}

void PoisonLedger::record_success(std::uint64_t fingerprint) {
  std::lock_guard lock(mu_);
  const auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return;
  if (it->second.quarantined) --quarantined_;
  entries_.erase(it);
}

std::size_t PoisonLedger::quarantined() const {
  std::lock_guard lock(mu_);
  return quarantined_;
}

std::size_t PoisonLedger::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

bool PoisonLedger::empty() const {
  std::lock_guard lock(mu_);
  return entries_.empty();
}

}  // namespace udsim
