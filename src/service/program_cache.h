// Fingerprint-keyed cache of compiled simulators with single-flight builds
// and a byte-budgeted LRU (DESIGN.md §5i).
//
// The expensive thing a service amortizes is compilation: two requests for
// the same netlist × engine chain × word size must share one compiled
// Program, and N concurrent first requests must trigger exactly one build
// (single-flight) — the rest wait on the builder, polling their own cancel
// token so a deadline is honored even while queued behind someone else's
// compile. Entries are handed out as shared_ptr, so LRU eviction only
// unlinks from the map; a simulator mid-run is never destroyed under its
// users. The cache relies on the Simulator::run_batch thread-safety
// contract (const, no mutable instance state) to let any number of requests
// run one cached engine concurrently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "core/engine_kind.h"
#include "core/simulator.h"
#include "netlist/diagnostics.h"
#include "obs/metrics.h"
#include "resilience/cancel.h"

namespace udsim {

class ProgramCache {
 public:
  /// What a compiled entry is keyed by: the structural netlist fingerprint
  /// (netlist_fingerprint), a variant fingerprint over the engine chain the
  /// request may use, and the word size.
  struct Key {
    std::uint64_t netlist_fp = 0;
    std::uint64_t variant_fp = 0;
    int word_bits = 32;

    [[nodiscard]] friend bool operator<(const Key& a, const Key& b) noexcept {
      if (a.netlist_fp != b.netlist_fp) return a.netlist_fp < b.netlist_fp;
      if (a.variant_fp != b.variant_fp) return a.variant_fp < b.variant_fp;
      return a.word_bits < b.word_bits;
    }
  };

  /// One ready entry. `diag` preserves the build-time chain-walk records
  /// (BudgetDowngrade / NativeFallback / EngineSelected) so every response
  /// served from this entry can explain which engine ran and why.
  ///
  /// `netlist` keeps the circuit the simulator was compiled from alive:
  /// `sim` holds only a `const Netlist&`, and a cache hit may come from a
  /// different request than the one that built the entry (same fingerprint,
  /// different — possibly already destroyed — netlist object). Builders must
  /// set it.
  struct Entry {
    std::shared_ptr<const Netlist> netlist;
    std::unique_ptr<Simulator> sim;
    EngineKind engine = EngineKind::Event2;
    std::size_t bytes = 0;  ///< resident-cost charge against the budget
    Diagnostics diag;
  };

  /// Builds an Entry; throws to report failure (the throw propagates to the
  /// acquiring caller and wakes the next waiter to try building).
  using Builder = std::function<std::shared_ptr<Entry>()>;

  struct Acquired {
    std::shared_ptr<const Entry> entry;
    bool hit = false;
    /// True when this caller blocked behind another request's in-flight
    /// build before the entry became available (the "wait" cache
    /// disposition in request traces and the event log).
    bool waited = false;
  };

  /// `budget_bytes` caps the summed Entry::bytes (0 = unbounded; at least
  /// one entry is always retained). Counters when `metrics` is non-null:
  /// service.cache.{hit,miss,build,evicted,wait}.
  explicit ProgramCache(std::size_t budget_bytes,
                        MetricsRegistry* metrics = nullptr) noexcept
      : budget_bytes_(budget_bytes), metrics_(metrics) {}

  /// Get-or-build with single-flight semantics. At most one caller runs
  /// `build` per key at a time; others block until the entry is ready,
  /// polling `cancel` (throws Cancelled with site "service.cache.wait" when
  /// it stops). A failed build releases the key so the next waiter retries.
  [[nodiscard]] Acquired acquire(const Key& key, const Builder& build,
                                 const CancelToken* cancel = nullptr);

  /// True when a ready entry for `key` exists right now (the load-shed
  /// cache-only admission probe; result is advisory under concurrency).
  [[nodiscard]] bool contains(const Key& key) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t bytes() const;

 private:
  struct Slot {
    std::shared_ptr<const Entry> ready;  ///< null while building
    std::uint64_t tick = 0;              ///< LRU stamp (monotonic use count)
  };

  void evict_over_budget_locked(const Key& keep);

  const std::size_t budget_bytes_;
  MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::map<Key, Slot> slots_;
  std::uint64_t tick_ = 0;
  std::size_t bytes_ = 0;
};

/// FNV-1a 64 over a span of engine kinds (the chain part of a cache key).
[[nodiscard]] std::uint64_t engine_chain_fingerprint(
    const std::vector<EngineKind>& chain) noexcept;

}  // namespace udsim
