// Graceful-degradation policy for the simulation service (DESIGN.md §5i).
//
// Overload is measured by queue fill (depth / capacity) and answered by
// *degrading before rejecting*: first give up the expensive native engine,
// then step down the IR fallback chain, then shrink per-request thread
// shares, and only at the last level close compile admission (serve cache
// hits, reject misses). Each level trades result latency/fidelity the
// cheapest way available before the service says no — the same philosophy
// as the compile-budget fallback chain, applied to load instead of memory.
#pragma once

#include <cstddef>
#include <vector>

namespace udsim {

/// One degradation level. Levels are cumulative in spirit: the table is
/// sorted by `queue_fill` and the highest level whose threshold is at or
/// below the current fill wins.
struct ShedLevel {
  double queue_fill = 0.0;   ///< activates at depth >= fill × capacity
  bool drop_native = false;  ///< skip EngineKind::Native (compile cost)
  std::size_t chain_skip = 0;///< drop this many engines off the chain front
  unsigned batch_threads = 0;///< per-request worker cap (0 = uncapped)
  bool cache_only = false;   ///< admit only compiled-program cache hits
};

/// The level table plus the decision function. The default table:
///
/// | level | fill  | native | chain          | threads | admission   |
/// |-------|-------|--------|----------------|---------|-------------|
/// | 0     | 0.00  | yes    | full           | uncapped| open        |
/// | 1     | 0.50  | no     | full           | <= 2    | open        |
/// | 2     | 0.75  | no     | skip 2 (PCSet+)| <= 1    | open        |
/// | 3     | 0.90  | no     | skip 2         | <= 1    | cache only  |
struct LoadShedPolicy {
  std::vector<ShedLevel> levels;

  LoadShedPolicy() : levels(default_levels()) {}

  [[nodiscard]] static std::vector<ShedLevel> default_levels();

  /// The level index in force for the given queue state (0 = no shedding).
  [[nodiscard]] std::size_t decide(std::size_t depth,
                                   std::size_t capacity) const noexcept;

  [[nodiscard]] const ShedLevel& level(std::size_t i) const noexcept {
    static const ShedLevel kNone{};
    return i < levels.size() ? levels[i] : kNone;
  }
};

}  // namespace udsim
