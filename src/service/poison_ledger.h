// Poison-request quarantine: a fingerprint-keyed negative cache
// (DESIGN.md §5k).
//
// A netlist that fails *deterministically* — the compiler rejects its
// emitted C, its program fails validation — will fail identically on every
// resubmission, and each round trip costs a queue slot, a compile attempt
// and a worker. The ledger remembers deterministic failures per netlist
// fingerprint; after `strike_threshold` strikes the fingerprint is
// quarantined and submit() resolves it as a fast structured Rejected
// without touching the queue. Entries expire after `ttl` (the toolchain may
// have been fixed) and the ledger is capped at `capacity` tracked
// fingerprints, evicting the stalest, so a hostile client cannot grow it
// without bound. A success for a tracked fingerprint clears its record.
//
// Counters (when `metrics` is non-null):
// service.poison.{quarantined,rejected,expired}.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace udsim {

struct PoisonLedgerConfig {
  /// Deterministic failures before a fingerprint is quarantined.
  unsigned strike_threshold = 2;
  /// How long a quarantine (and any partial strike record) lasts.
  std::chrono::nanoseconds ttl{std::chrono::minutes(5)};
  /// Tracked fingerprints (strikes + quarantined); stalest evicted beyond.
  std::size_t capacity = 256;
};

/// Thread-safe; shared by submit() (the fast-reject probe) and the workers
/// (strike / clear reporting).
class PoisonLedger {
 public:
  explicit PoisonLedger(PoisonLedgerConfig cfg = {},
                        MetricsRegistry* metrics = nullptr)
      : cfg_(cfg), metrics_(metrics) {}

  /// Quarantine probe for submit(). Returns the detail of the recorded
  /// failure when `fingerprint` is quarantined (bumping
  /// service.poison.rejected), nullopt otherwise. Expired entries are
  /// purged on the way (service.poison.expired).
  [[nodiscard]] std::optional<std::string> check(std::uint64_t fingerprint);

  /// Record one deterministic failure. Returns true when this strike
  /// crossed the threshold and quarantined the fingerprint
  /// (service.poison.quarantined).
  bool record_failure(std::uint64_t fingerprint, std::string_view detail);

  /// The fingerprint completed: drop its strike record, if any.
  void record_success(std::uint64_t fingerprint);

  /// Currently quarantined fingerprints (expired entries not counted).
  [[nodiscard]] std::size_t quarantined() const;
  /// Tracked fingerprints, quarantined or still accumulating strikes.
  [[nodiscard]] std::size_t size() const;
  /// True when nothing is tracked — submit()'s zero-cost fast path: no
  /// fingerprint needs computing while the ledger is empty.
  [[nodiscard]] bool empty() const;

  [[nodiscard]] const PoisonLedgerConfig& config() const noexcept {
    return cfg_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    unsigned strikes = 0;
    bool quarantined = false;
    std::string detail;            ///< last deterministic failure
    Clock::time_point expires_at;  ///< strike record / quarantine TTL
    Clock::time_point last_seen;   ///< capacity eviction order
  };

  /// Drop `it` if past its TTL; returns true when it was erased.
  bool expire_locked(std::map<std::uint64_t, Entry>::iterator it,
                     Clock::time_point now);
  void evict_over_capacity_locked();

  const PoisonLedgerConfig cfg_;
  MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> entries_;
  std::size_t quarantined_ = 0;
};

}  // namespace udsim
