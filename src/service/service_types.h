// Request/response vocabulary of the simulation service (DESIGN.md §5i).
//
// The service's one hard promise is *exactly-once resolution*: every
// submitted request ends in precisely one Outcome — never a hang, never a
// silent drop, never a double completion. The Outcome enum is therefore the
// complete taxonomy of how a request can end, and the soak test
// (tests/service_soak_test.cpp) holds the sum-over-outcomes == submissions
// invariant under concurrent clients, injected faults and random cancels.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine_kind.h"
#include "core/simulator.h"
#include "netlist/netlist.h"
#include "resilience/checkpoint.h"

namespace udsim {

/// How a request ended. Exactly one of these per submission.
enum class Outcome : std::uint8_t {
  Completed,       ///< ran to the last vector; rows are full
  Cancelled,       ///< SimService::cancel() or client token; may checkpoint
  DeadlineExpired, ///< the request's deadline passed; may checkpoint
  Rejected,        ///< structural/admission refusal (budget, bad shape,
                   ///  load-shed cache-only mode) — never entered the queue
                   ///  or was turned away before compiling
  QueueFull,       ///< backpressure: the bounded queue had no room
  Failed,          ///< retries exhausted on a non-transient or persistent fault
  ShutDown,        ///< the service stopped before the request could run
};

[[nodiscard]] constexpr std::string_view outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::Completed:       return "completed";
    case Outcome::Cancelled:       return "cancelled";
    case Outcome::DeadlineExpired: return "deadline_expired";
    case Outcome::Rejected:        return "rejected";
    case Outcome::QueueFull:       return "queue_full";
    case Outcome::Failed:          return "failed";
    case Outcome::ShutDown:        return "shut_down";
  }
  return "unknown";
}

/// Client session handle (opaque id; the service keeps the state).
using SessionId = std::uint64_t;

/// One unit of client work: a netlist plus a row-major vector stream.
/// The netlist rides in a shared_ptr because the request outlives the
/// submit() call (it sits in the queue, then runs on a worker) and the
/// compiled-program cache may keep the netlist's fingerprint alive longer
/// than any one request.
struct SimRequest {
  std::shared_ptr<const Netlist> netlist{};
  std::vector<Bit> vectors{};  ///< row-major, one Bit per primary input per row
  /// Per-request deadline measured from submission; zero = none. The
  /// deadline is inherited by every phase: queue wait, compile (via the
  /// chain walk's cancel hook) and the batch run itself.
  std::chrono::nanoseconds deadline{0};
  /// Continue an earlier early-stopped run. The checkpoint's geometry pins
  /// the thread count, so set `batch_threads` to the original run's count.
  std::shared_ptr<const BatchCheckpoint> resume{};
  /// Worker threads for the batch phase; 0 = service default (possibly
  /// shed-capped). A non-zero value is honored exactly — required when
  /// resuming, where geometry must match.
  unsigned batch_threads = 0;
};

/// Everything the service has to say about one finished request.
struct SimResponse {
  Outcome outcome = Outcome::ShutDown;
  std::string detail;          ///< human-readable cause for non-Completed
  EngineKind engine = EngineKind::Event2;  ///< engine that ran (or would have)
  std::size_t shed_level = 0;  ///< load-shed level in force when scheduled
  bool cache_hit = false;      ///< compiled program came from the cache
  BatchResult batch;           ///< rows (full when Completed, prefix otherwise)
  BatchCheckpoint checkpoint;  ///< populated when stopped and resumable
  bool resumable = false;
  std::uint64_t vectors_done = 0;
  std::uint64_t shard_retries = 0;   ///< within-run shard retries (PR 4 layer)
  std::uint64_t quarantined = 0;     ///< vectors replaced by quarantine
  unsigned attempts = 1;             ///< whole-run attempts (1 = no retry)
  std::uint64_t queue_ns = 0;        ///< time spent waiting in the queue
  std::uint64_t run_ns = 0;          ///< time spent executing (all attempts)
  /// Request-trace id minted at submit (0 only when telemetry is disabled).
  /// Keys the request's line in the JSONL event log and its lane in the
  /// Perfetto trace export.
  std::uint64_t trace_id = 0;
};

/// Submission receipt: the request id (usable with SimService::cancel) and
/// the future that resolves to the response, exactly once.
struct ServiceTicket {
  std::uint64_t id = 0;
  std::future<SimResponse> result;
};

}  // namespace udsim
