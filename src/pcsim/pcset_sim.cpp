#include "pcsim/pcset_sim.h"

#include <algorithm>
#include <stdexcept>

#include "ir/emit_util.h"
#include "obs/metrics.h"

namespace udsim {

std::uint32_t PCSetCompiled::var_at_or_before(NetId n, int t) const {
  const auto& vars = net_vars.at(n.value);
  std::uint32_t best = 0;
  bool found = false;
  for (const auto& [time, word] : vars) {
    if (time > t) break;
    best = word;
    found = true;
  }
  if (!found) {
    throw std::out_of_range("net has no PC-set element at or before requested time");
  }
  return best;
}

std::uint32_t PCSetCompiled::final_var(NetId n) const {
  const auto& vars = net_vars.at(n.value);
  if (vars.empty()) throw std::out_of_range("net has no variables");
  return vars.back().second;
}

PCSetCompiled compile_pcset(const Netlist& nl, std::span<const NetId> monitored,
                            bool packed, int word_bits) {
  return compile_pcset(nl, monitored, packed, word_bits, CompileGuard{});
}

PCSetCompiled compile_pcset(const Netlist& nl, std::span<const NetId> monitored,
                            bool packed, int word_bits,
                            const CompileGuard& guard) {
  nl.validate();
  if (!guard.budget.unlimited()) {
    // Predicted from PC-set statistics alone, before any op is emitted.
    // (The prediction assumes the default monitored set — the primary
    // outputs — which bounds any smaller monitored set's print routine.)
    guard.enforce(estimate_compile_cost(nl, EngineKind::PCSet, word_bits),
                  /*predicted=*/true);
  }
  for (const Net& n : nl.nets()) {
    if (n.drivers.size() > 1) {
      throw NetlistError("compile_pcset requires lowered wired nets (net '" +
                         n.name + "' has several drivers)");
    }
  }
  MetricsRegistry* const reg = guard.metrics;
  TraceSpan total_span(reg, "compile.total");
  PCSetCompiled out;
  out.packed = packed;
  out.monitored.assign(monitored.begin(), monitored.end());
  if (out.monitored.empty()) {
    out.monitored = nl.primary_outputs();
  }

  const Levelization lv = [&] {
    guard.check_cancel("compile.levelize");
    TraceSpan span(reg, "compile.levelize");
    return levelize(nl);
  }();
  PCSets pc = [&] {
    guard.check_cancel("compile.pcset");
    TraceSpan span(reg, "compile.pcset");
    return compute_pc_sets(nl, lv);
  }();
  guard.check_cancel("compile.emit");
  TraceSpan emit_span_outer(reg, "compile.emit");
  insert_zeros(nl, lv, out.monitored, pc);
  // If any monitored net retains its previous value (element 0), the PRINT
  // gate fires at time 0, so *every* monitored net must be readable then.
  bool print_at_zero = false;
  for (NetId m : out.monitored) print_at_zero |= pc.net_pc[m.value].test(0);
  if (print_at_zero) {
    for (NetId m : out.monitored) pc.net_pc[m.value].set(0);
  }

  Program& p = out.program;
  p.word_bits = word_bits;
  p.input_words = static_cast<std::uint32_t>(nl.primary_inputs().size());

  // ---- variable allocation: one word per (net, PC element) ----------------
  out.net_vars.resize(nl.net_count());
  std::uint32_t next = 0;
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    for (int t : pc.net_pc[n].to_vector()) {
      out.net_vars[n].emplace_back(t, next);
      p.names.push_back(nl.net(NetId{n}).name + "_" + std::to_string(t));
      ++next;
    }
  }
  p.arena_words = next;
  out.variable_count = next;

  const auto var_of = [&](NetId n, int t) -> std::uint32_t {
    for (const auto& [time, word] : out.net_vars[n.value]) {
      if (time == t) return word;
    }
    throw std::logic_error("missing PC-set variable");
  };

  // ---- constants: arena-resident, no per-vector code ----------------------
  std::vector<bool> is_const_net(nl.net_count(), false);
  for (const Gate& g : nl.gates()) {
    if (!is_constant(g.type)) continue;
    is_const_net[g.output.value] = true;
    p.arena_init.push_back(
        {var_of(g.output, 0), g.type == GateType::Const1 ? ~std::uint64_t{0} : 0});
  }

  // ---- per-vector code -----------------------------------------------------
  // 1. Retained-value initializations: X_0 = X_max for every net that had a
  //    zero inserted (paper: "moving the final value of the net into the
  //    variable that corresponds to the zero PC-set element").
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const NetId id{n};
    if (nl.net(id).is_primary_input || is_const_net[n]) continue;
    if (!pc.net_pc[n].test(0)) continue;
    const std::uint32_t v0 = var_of(id, 0);
    const std::uint32_t vmax = out.net_vars[n].back().second;
    if (v0 != vmax) p.ops.push_back({OpCode::Copy, 0, v0, vmax, 0});
  }
  // 2. Primary-input loads.
  for (std::uint32_t i = 0; i < nl.primary_inputs().size(); ++i) {
    const NetId pi = nl.primary_inputs()[i];
    p.ops.push_back({packed ? OpCode::LoadWord : OpCode::LoadBit, 0, var_of(pi, 0), i, 0});
  }
  // 3. Gate simulations in levelized order, one per PC-set element.
  std::vector<std::uint32_t> operands;
  for (GateId gid : topological_gate_order(nl)) {
    const Gate& g = nl.gate(gid);
    if (is_constant(g.type)) continue;
    const int d = nl.delay(gid);
    for (int t : pc.gate_pc[gid.value].to_vector()) {
      if (t == 0) continue;  // zero element: value retained, no simulation
      operands.clear();
      for (NetId in : g.inputs) {
        // Largest element strictly smaller than t for unit delay;
        // <= t for zero-delay resolvers.
        const int limit = t - d + 1;
        const int src = pc.net_pc[in.value].max_bit_below(static_cast<std::size_t>(limit));
        if (src < 0) {
          throw std::logic_error("zero insertion failed to provide an operand");
        }
        operands.push_back(var_of(in, src));
      }
      emit_gate_word(p.ops, g.type, var_of(g.output, t), operands);
    }
  }

  // ---- output routine: the PRINT pseudo-gate -------------------------------
  DynBitset print_set(static_cast<std::size_t>(lv.depth) + 1);
  for (NetId m : out.monitored) print_set.or_with(pc.net_pc[m.value]);
  for (int t : print_set.to_vector()) {
    out.print_times.push_back(t);
    std::vector<std::uint32_t> row;
    row.reserve(out.monitored.size());
    for (NetId m : out.monitored) {
      const int src = pc.net_pc[m.value].max_bit_below(static_cast<std::size_t>(t) + 1);
      if (src < 0) throw std::logic_error("monitored net lacks a printable variable");
      row.push_back(var_of(m, src));
    }
    out.print_vars.push_back(std::move(row));
  }
  if (reg) {
    reg->counter("compile.programs").add(1);
    reg->counter("compile.ops").add(p.ops.size());
    reg->counter("compile.arena_words").add(p.arena_words);
    reg->counter("compile.arena_init_words").add(p.arena_init.size());
    reg->counter("compile.input_words").add(p.input_words);
    reg->counter("compile.depth").set_max(static_cast<std::uint64_t>(lv.depth));
    reg->counter("compile.pcset_variables").add(out.variable_count);
    reg->counter("compile.print_times").add(out.print_times.size());
  }
  if (!guard.budget.unlimited()) {
    guard.enforce(measure_compile_cost(p, EngineKind::PCSet, nl.net_count()),
                  /*predicted=*/false);
  }
  return out;
}

}  // namespace udsim
