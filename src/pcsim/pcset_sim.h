// The PC-set method of compiled unit-delay simulation (paper §2).
//
// One variable per (net, PC-set element); one straight-line gate evaluation
// per element of each gate's PC-set; operands chosen as "the largest element
// strictly smaller than the element being generated" (<= for zero-delay
// wired resolvers). Inserted zeros become `X_0 = X_max;` initializations,
// exactly as in paper Fig. 4. The output routine is the PRINT pseudo-gate:
// one output vector per element of the union of the monitored nets' PC-sets.
//
// Because every op is bitwise, the same program simulates 32 (or 64)
// *independent vector streams* at once when inputs are packed one stream per
// bit-lane — the data-parallel extension the paper notes the PC-set method
// is amenable to (and the parallel technique is not).
#pragma once

#include <span>
#include <vector>

#include "analysis/compile_budget.h"
#include "analysis/levelize.h"
#include "analysis/pcset.h"
#include "core/kernel_runner.h"
#include "netlist/netlist.h"

namespace udsim {

struct PCSetCompiled {
  Program program;
  bool packed = false;
  std::vector<NetId> monitored;

  /// Per net: (time, arena word) pairs sorted by time — its variables.
  std::vector<std::vector<std::pair<int, std::uint32_t>>> net_vars;

  /// PRINT-gate PC-set: the times at which an output vector is produced.
  std::vector<int> print_times;
  /// print_vars[i][j]: arena word giving monitored[j]'s value at
  /// print_times[i].
  std::vector<std::vector<std::uint32_t>> print_vars;

  std::size_t variable_count = 0;

  /// Arena word of the net's variable for time t' = largest PC element <= t;
  /// throws std::out_of_range if the net has no element <= t.
  [[nodiscard]] std::uint32_t var_at_or_before(NetId n, int t) const;
  /// Arena word of the net's final-value variable (largest PC element).
  [[nodiscard]] std::uint32_t final_var(NetId n) const;
};

/// Compile. `monitored` defaults (empty span) to the primary outputs.
/// `packed` selects whole-word input loads: one independent vector stream
/// per bit lane.
[[nodiscard]] PCSetCompiled compile_pcset(const Netlist& nl,
                                          std::span<const NetId> monitored = {},
                                          bool packed = false, int word_bits = 32);

/// Guarded variant: throws BudgetExceeded when the predicted or emitted
/// cost crosses `guard.budget`; records compile diagnostics into
/// `guard.diag` when set.
[[nodiscard]] PCSetCompiled compile_pcset(const Netlist& nl,
                                          std::span<const NetId> monitored,
                                          bool packed, int word_bits,
                                          const CompileGuard& guard);

/// Runtime wrapper (scalar mode): steps vectors, exposes the value history
/// of monitored nets.
template <class Word = std::uint32_t>
class PCSetSim {
 public:
  PCSetSim(const Netlist& nl, std::span<const NetId> monitored = {})
      : nl_(nl),
        compiled_(compile_pcset(nl, monitored, false, static_cast<int>(sizeof(Word) * 8))),
        runner_(compiled_.program) {}

  PCSetSim(const Netlist& nl, std::span<const NetId> monitored,
           const CompileGuard& guard)
      : nl_(nl),
        compiled_(compile_pcset(nl, monitored, false,
                                static_cast<int>(sizeof(Word) * 8), guard)),
        runner_(compiled_.program) {}

  // runner_ references compiled_.program; relocation would dangle.
  PCSetSim(const PCSetSim&) = delete;
  PCSetSim& operator=(const PCSetSim&) = delete;

  void step(std::span<const Bit> pi_values) {
    in_.assign(nl_.primary_inputs().size(), 0);
    for (std::size_t i = 0; i < in_.size(); ++i) in_[i] = pi_values[i] & 1;
    runner_.run(in_);
  }

  /// Value of a monitored net at time t for the last vector (valid for any
  /// t in [0, depth]; between PC elements the value holds).
  [[nodiscard]] Bit value_at(NetId n, int t) const {
    return runner_.bit(compiled_.var_at_or_before(n, t), 0);
  }
  [[nodiscard]] Bit final_value(NetId n) const {
    return runner_.bit(compiled_.final_var(n), 0);
  }
  /// Arena location of the net's settled value (batch-layer probe).
  [[nodiscard]] ArenaProbe final_arena_probe(NetId n) const {
    return {compiled_.final_var(n), 0};
  }
  [[nodiscard]] const PCSetCompiled& compiled() const noexcept { return compiled_; }

  /// Attach runtime execution counters (obs/pass_cost.h).
  void set_metrics(MetricsRegistry* reg) { runner_.set_metrics(reg); }
  /// Cooperative stop between vectors (see KernelRunner::set_cancel).
  void set_cancel(const CancelToken* token) noexcept { runner_.set_cancel(token); }

 private:
  const Netlist& nl_;
  PCSetCompiled compiled_;
  KernelRunner<Word> runner_;
  std::vector<Word> in_;
};

}  // namespace udsim
