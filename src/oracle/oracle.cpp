#include "oracle/oracle.h"

#include <stdexcept>

namespace udsim {

OracleSim::OracleSim(const Netlist& nl) : nl_(nl) {
  lower_wired_nets(nl_);
  nl_.validate();
  lv_ = levelize(nl_);
  order_ = topological_gate_order(nl_);
  state_.assign(nl_.net_count(), 0);
  reset(0);
}

void OracleSim::reset(Bit value) {
  for (Bit& b : state_) b = value & 1;
  // Constant nets always hold their constant.
  for (const Gate& g : nl_.gates()) {
    if (g.type == GateType::Const0) state_[g.output.value] = 0;
    if (g.type == GateType::Const1) state_[g.output.value] = 1;
  }
}

Waveform OracleSim::step(std::span<const Bit> pi_values) {
  if (pi_values.size() != nl_.primary_inputs().size()) {
    throw std::invalid_argument("OracleSim::step: wrong primary-input count");
  }
  Waveform wf(nl_.net_count(), lv_.depth);

  // Primary inputs take the new value at time 0 and hold it.
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    const NetId pi = nl_.primary_inputs()[i];
    for (int t = 0; t <= lv_.depth; ++t) wf.set(pi, t, pi_values[i] & 1);
  }
  // Net-at-a-time evaluation in topological order, generic over per-gate
  // delays: out(t) = f(inputs at t - delay); times below the delay hold the
  // previous vector's final value.
  std::vector<Bit> pins;
  for (GateId gid : order_) {
    const Gate& g = nl_.gate(gid);
    const int d = nl_.delay(gid);
    const NetId out = g.output;
    for (int t = 0; t <= lv_.depth; ++t) {
      Bit v;
      if (t < d) {
        v = state_[out.value];
      } else {
        pins.clear();
        for (NetId in : g.inputs) pins.push_back(wf.at(in, t - d));
        v = eval2(g.type, pins);
      }
      wf.set(out, t, v);
    }
  }
  for (std::uint32_t n = 0; n < nl_.net_count(); ++n) {
    state_[n] = wf.final_value(NetId{n});
  }
  return wf;
}

}  // namespace udsim
