// Oblivious time-stepped unit-delay reference simulator.
//
// Semantics (shared by every engine in this library):
//   - the circuit carries state: the final value of every net from the
//     previous input vector (initially all zero, or as set by reset());
//   - at time 0 the primary inputs take the new vector's values; every other
//     net holds its previous final value;
//   - for t = 1..depth, each unit-delay gate's output at t is its function
//     applied to its input values at t-1; zero-delay wired resolvers react
//     within the same time step.
//
// This engine recomputes every gate at every time step — O(depth × gates) —
// so it is only a correctness oracle, not a performance baseline.
#pragma once

#include <span>

#include "analysis/levelize.h"
#include "core/waveform.h"
#include "netlist/netlist.h"

namespace udsim {

class OracleSim {
 public:
  /// Takes a private lowered copy of `nl` (wired nets become zero-delay
  /// resolver gates; original NetIds stay valid).
  explicit OracleSim(const Netlist& nl);

  /// Simulate one input vector (one Bit per primary input, in
  /// primary_inputs() order) and return the full waveform.
  Waveform step(std::span<const Bit> pi_values);

  /// Reset all net state to `value` (default 0).
  void reset(Bit value = 0);

  [[nodiscard]] int depth() const noexcept { return lv_.depth; }
  [[nodiscard]] const Levelization& levelization() const noexcept { return lv_; }
  [[nodiscard]] Bit state(NetId n) const { return state_.at(n.value); }

 private:
  Netlist nl_;  ///< lowered private copy
  Levelization lv_;
  std::vector<GateId> order_;
  std::vector<Bit> state_;  ///< final values from the previous vector
};

}  // namespace udsim
